//! Shared Raft machinery: configuration, per-node state, the proposal
//! queue, follower services, the apply loop and commit accounting.
//!
//! Everything protocol-correct lives here so the four drivers differ only
//! in their *waiting structure* — the paper's variable of interest.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};
use std::time::Duration;

use bytes::Bytes;
use depfast::event::{EventHandle, EventKind, Signal, ValueEvent};
use depfast::runtime::{Coroutine, Runtime};
use depfast::TypedEvent;
use depfast_metrics::{Counter, Gauge, HistogramHandle};
use depfast_rpc::proxy::RpcEvent;
use depfast_rpc::wire::WireRead;
use depfast_rpc::{group_method, Endpoint, Method};
use depfast_storage::{Entry, LogStore, LogStoreCfg};
use simkit::{NodeId, SimTime, World};

use crate::types::{
    from_wire, AppendReq, AppendResp, VoteReq, VoteResp, APPEND_ENTRIES, PRE_VOTE, REQUEST_VOTE,
};

/// Raft timing, batching and cost configuration (shared by all drivers).
#[derive(Debug, Clone, Copy)]
pub struct RaftCfg {
    /// Leader heartbeat interval.
    pub heartbeat: Duration,
    /// Election timeout range `[lo, hi)`.
    pub election_timeout: (Duration, Duration),
    /// Maximum proposals folded into one replication round.
    pub batch_max: usize,
    /// How long the leader lingers after intake to grow a round's batch
    /// before shipping it (`Duration::ZERO` = ship immediately; emergent
    /// batching from queueing alone is usually enough under load).
    pub batch_window: Duration,
    /// Replication rounds the leader may have unresolved before intake
    /// stalls (1 = strictly serial rounds, the classic lock-step leader).
    pub pipeline_depth: usize,
    /// In-flight (not yet classified) `AppendEntries` allowed per
    /// follower before further sends to it are skipped. Stale slots
    /// expire after `replicate_timeout`, so a lost reply cannot wedge
    /// the window shut.
    pub append_window: usize,
    /// Maximum entries shipped in one `AppendEntries`.
    pub max_entries_per_append: usize,
    /// Quorum-wait deadline per replication round.
    pub replicate_timeout: Duration,
    /// Follower CPU cost: fixed part of handling an `AppendEntries`.
    pub append_cpu_base: Duration,
    /// Follower CPU cost per entry appended.
    pub append_cpu_per_entry: Duration,
    /// Leader CPU cost per proposal (request parsing, batching).
    pub propose_cpu: Duration,
    /// CPU cost of applying one entry to the state machine.
    pub apply_cpu: Duration,
    /// Log store (EntryCache, WAL) configuration.
    pub log: LogStoreCfg,
    /// If set, this node starts as leader of term 1 and elections are
    /// pre-seeded (used for steady-state benchmarks; `None` = elect).
    pub bootstrap_leader: Option<u32>,
}

impl Default for RaftCfg {
    fn default() -> Self {
        RaftCfg {
            heartbeat: Duration::from_millis(30),
            election_timeout: (Duration::from_millis(150), Duration::from_millis(300)),
            batch_max: 64,
            batch_window: Duration::ZERO,
            pipeline_depth: 4,
            append_window: 8,
            max_entries_per_append: 256,
            replicate_timeout: Duration::from_millis(1000),
            append_cpu_base: Duration::from_micros(20),
            append_cpu_per_entry: Duration::from_micros(15),
            propose_cpu: Duration::from_micros(25),
            apply_cpu: Duration::from_micros(20),
            log: LogStoreCfg::default(),
            bootstrap_leader: None,
        }
    }
}

/// A node's current protocol role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Accepting entries from a leader.
    Follower,
    /// Running an election.
    Candidate,
    /// Coordinating replication.
    Leader,
}

/// One queued client proposal: payload plus the event fired with the apply
/// result once committed.
pub type Proposal = (Bytes, TypedEvent<Bytes>);

struct Pq {
    q: std::collections::VecDeque<Proposal>,
    waker: Option<Waker>,
}

/// The leader's incoming-proposal queue.
#[derive(Clone)]
pub struct ProposalQueue {
    inner: Rc<RefCell<Pq>>,
}

impl Default for ProposalQueue {
    fn default() -> Self {
        ProposalQueue {
            inner: Rc::new(RefCell::new(Pq {
                q: std::collections::VecDeque::new(),
                waker: None,
            })),
        }
    }
}

impl ProposalQueue {
    /// Enqueues a proposal and wakes the driver loop.
    pub fn push(&self, p: Proposal) {
        let mut inner = self.inner.borrow_mut();
        inner.q.push_back(p);
        if let Some(w) = inner.waker.take() {
            w.wake();
        }
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.inner.borrow().q.len()
    }

    /// `true` if no proposals are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fails and drains every queued proposal (leadership lost).
    pub fn fail_all(&self) {
        let drained: Vec<Proposal> = self.inner.borrow_mut().q.drain(..).collect();
        for (_, ev) in drained {
            ev.fire_err();
        }
    }

    /// Takes up to `max` queued proposals without waiting. The group
    /// commit batch window uses this to fold in whatever arrived while
    /// the leader lingered.
    pub fn drain_up_to(&self, max: usize) -> Vec<Proposal> {
        let mut inner = self.inner.borrow_mut();
        let take = inner.q.len().min(max);
        inner.q.drain(..take).collect()
    }

    /// Waits for proposals and takes up to `max`; with a deadline, may
    /// resolve to an empty batch (used as a combined heartbeat timer).
    pub fn pop_batch(&self, rt: &Runtime, max: usize, deadline: Option<SimTime>) -> PopBatch {
        PopBatch {
            rt: rt.clone(),
            q: self.inner.clone(),
            max,
            deadline,
            armed: false,
        }
    }
}

/// Future returned by [`ProposalQueue::pop_batch`].
pub struct PopBatch {
    rt: Runtime,
    q: Rc<RefCell<Pq>>,
    max: usize,
    deadline: Option<SimTime>,
    armed: bool,
}

impl Future for PopBatch {
    type Output = Vec<Proposal>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Vec<Proposal>> {
        {
            let mut inner = self.q.borrow_mut();
            if !inner.q.is_empty() {
                let take = inner.q.len().min(self.max);
                return Poll::Ready(inner.q.drain(..take).collect());
            }
            inner.waker = Some(cx.waker().clone());
        }
        if let Some(dl) = self.deadline {
            if self.rt.now() >= dl {
                return Poll::Ready(Vec::new());
            }
            if !self.armed {
                self.armed = true;
                self.rt.schedule_wake(dl, cx.waker().clone());
            }
        }
        Poll::Pending
    }
}

/// Mutable protocol state of one node.
pub struct CoreState {
    /// Current role.
    pub role: Role,
    /// Last known leader.
    pub leader_hint: Option<NodeId>,
    /// When the last valid leader contact arrived.
    pub last_heartbeat: SimTime,
    /// Per-peer next index to send.
    pub next_index: HashMap<u32, u64>,
    /// Per-peer highest replicated index.
    pub match_index: HashMap<u32, u64>,
    /// Bumped each time this node becomes leader (wakes the driver loop).
    pub leader_epoch: u64,
}

type ApplyFn = Box<dyn FnMut(&Entry) -> Bytes>;

/// Cached handles for this node's `raft.*` series. Lags are measured from
/// proposal creation, so they reflect what a *client* would attribute to
/// the consensus layer; the substrate series (`sim.*`) say which resource
/// actually caused an inflation.
struct RaftStats {
    commit_lag: HistogramHandle,
    apply_lag: HistogramHandle,
    commit_index: Gauge,
    applied_index: Gauge,
    /// Entries folded into each replication round (group commit size).
    batch_size: HistogramHandle,
    /// Replication rounds launched.
    batch_rounds: Counter,
    /// Unresolved rounds right now (≤ `pipeline_depth`).
    pipeline_inflight: Gauge,
    /// Intake stalls at the pipeline-depth gate.
    pipeline_stalls: Counter,
    /// Sends skipped because a follower's append window was full.
    window_skips: Counter,
    /// Followers quarantined into lazy-probe catch-up (suspect mode).
    suspects: Counter,
    /// Entries per outgoing non-empty `AppendEntries`.
    entries_per_append: HistogramHandle,
}

impl RaftStats {
    fn new(rt: &Runtime, group: u32) -> Self {
        let scope = rt.tracer().metrics().node(rt.node().0);
        if group == 0 {
            // Legacy single-group namespace: untagged keys, byte-identical
            // to every pre-multi-group artifact.
            RaftStats {
                commit_lag: scope.histogram("raft.commit_lag"),
                apply_lag: scope.histogram("raft.apply_lag"),
                commit_index: scope.gauge("raft.commit_index"),
                applied_index: scope.gauge("raft.applied_index"),
                batch_size: scope.histogram("raft.batch.size"),
                batch_rounds: scope.counter("raft.batch.rounds"),
                pipeline_inflight: scope.gauge("raft.pipeline.inflight"),
                pipeline_stalls: scope.counter("raft.pipeline.stalls"),
                window_skips: scope.counter("raft.append.window_skips"),
                suspects: scope.counter("raft.append.suspects"),
                entries_per_append: scope.histogram("rpc.entries_per_append"),
            }
        } else {
            // Multi-group: co-located groups share a node, so every series
            // carries a `g{gid}` tag — aggregating them silently would hide
            // exactly the per-group blast-radius split this repo measures.
            let g = depfast_metrics::group_label(group);
            RaftStats {
                commit_lag: scope.histogram_tagged("raft.commit_lag", g),
                apply_lag: scope.histogram_tagged("raft.apply_lag", g),
                commit_index: scope.gauge_tagged("raft.commit_index", g),
                applied_index: scope.gauge_tagged("raft.applied_index", g),
                batch_size: scope.histogram_tagged("raft.batch.size", g),
                batch_rounds: scope.counter_tagged("raft.batch.rounds", g),
                pipeline_inflight: scope.gauge_tagged("raft.pipeline.inflight", g),
                pipeline_stalls: scope.counter_tagged("raft.pipeline.stalls", g),
                window_skips: scope.counter_tagged("raft.append.window_skips", g),
                suspects: scope.counter_tagged("raft.append.suspects", g),
                entries_per_append: scope.histogram_tagged("rpc.entries_per_append", g),
            }
        }
    }
}

/// The shared per-node Raft core all four drivers build on.
pub struct RaftCore {
    /// DepFast runtime of this node.
    pub rt: Runtime,
    /// Simulated cluster.
    pub world: World,
    /// RPC endpoint of this node.
    pub ep: Endpoint,
    /// This node's id.
    pub id: NodeId,
    /// Every cluster member (including this node).
    pub members: Vec<NodeId>,
    /// Every other member.
    pub peers: Vec<NodeId>,
    /// The replicated log.
    pub log: LogStore,
    /// Commit index as a watchable variable (the apply loop waits on it).
    pub commit: ValueEvent<u64>,
    /// Applied index as a watchable variable (ReadIndex reads wait on it).
    pub applied_idx: ValueEvent<u64>,
    /// Leadership epoch as a watchable variable (driver loops wait on it).
    pub leader_gen: ValueEvent<u64>,
    /// Configuration.
    pub cfg: RaftCfg,
    /// Mutable protocol state.
    pub st: RefCell<CoreState>,
    /// Client proposals awaiting commit+apply, by log index.
    pub pending: RefCell<HashMap<u64, TypedEvent<Bytes>>>,
    /// Incoming proposals.
    pub proposals: ProposalQueue,
    apply_fn: RefCell<Option<ApplyFn>>,
    applied: Cell<u64>,
    stats: RaftStats,
    /// Replication rounds launched by this node as leader (pipeline
    /// accounting; never reset — the gate only looks at the difference).
    pub rounds_launched: Cell<u64>,
    /// Resolved-round count as a watchable: the pipeline-depth gate
    /// waits on it.
    pub rounds_done: ValueEvent<u64>,
    /// Per-peer in-flight `AppendEntries` send times (window slots).
    append_inflight: RefCell<HashMap<u32, std::collections::VecDeque<SimTime>>>,
    /// Per-peer count of sends skipped on a full window.
    append_skips: RefCell<HashMap<u32, u64>>,
    /// Per-peer quarantine state: a follower whose append window filled
    /// up is fed by lazy probes instead of pipelined rounds until its lag
    /// shrinks again.
    suspects: RefCell<HashMap<u32, SuspectState>>,
    /// Follower-side: highest index log-match-verified against the
    /// current leader's stream (appended locally, though possibly not yet
    /// durable). Clamped on truncation; reported in every append reply.
    verified_index: Cell<u64>,
    /// Next FIFO ticket for incoming `AppendEntries` (taken at delivery).
    append_ticket: Cell<u64>,
    /// Retired-ticket watermark: the handler holding ticket `k` enters its
    /// ordered section once this reaches `k`. Keeps pipelined appends
    /// applying to the log in arrival order even though their (entry-count
    /// proportional) CPU costs finish out of order on a multi-core node.
    append_turn: ValueEvent<u64>,
    /// Committed-entry counter (throughput accounting).
    pub committed_count: Cell<u64>,
    /// Extra delay added to this node's election timeout draws — the
    /// fail-slow mitigation (§5) uses it to keep a demoted fail-slow
    /// leader from immediately winning re-election.
    pub election_penalty: Cell<Duration>,
    /// Raft group id. `0` is the legacy single-group namespace (untagged
    /// metrics, un-namespaced RPC methods); multi-group clusters number
    /// their groups from 1.
    pub group: u32,
}

impl RaftCore {
    /// Creates the core for `rt`'s node in a cluster of `members`
    /// (legacy single-group form: group id 0).
    pub fn new(
        rt: &Runtime,
        world: &World,
        ep: &Endpoint,
        members: Vec<NodeId>,
        cfg: RaftCfg,
    ) -> Rc<Self> {
        Self::new_in_group(rt, world, ep, members, cfg, 0)
    }

    /// Creates the core for `rt`'s node as a member of Raft group
    /// `group`. Groups co-located on one [`Endpoint`] keep their RPC
    /// services and metric series apart: every method id is namespaced
    /// through [`RaftCore::method`] and every `raft.*` series carries a
    /// `g{group}` tag (group 0 = the legacy untagged namespace).
    pub fn new_in_group(
        rt: &Runtime,
        world: &World,
        ep: &Endpoint,
        members: Vec<NodeId>,
        cfg: RaftCfg,
        group: u32,
    ) -> Rc<Self> {
        let id = rt.node();
        let peers: Vec<NodeId> = members.iter().copied().filter(|m| *m != id).collect();
        let log = LogStore::new(rt, world, cfg.log);
        let bootstrap_role = match cfg.bootstrap_leader {
            Some(l) if l == id.0 => Role::Leader,
            Some(_) => Role::Follower,
            None => Role::Follower,
        };
        let core = Rc::new(RaftCore {
            rt: rt.clone(),
            world: world.clone(),
            ep: ep.clone(),
            id,
            peers: peers.clone(),
            members,
            log,
            commit: ValueEvent::labeled(rt, 0, "commit_index"),
            applied_idx: ValueEvent::labeled(rt, 0, "applied_index"),
            leader_gen: ValueEvent::labeled(rt, 0, "leader_gen"),
            cfg,
            st: RefCell::new(CoreState {
                role: bootstrap_role,
                leader_hint: cfg.bootstrap_leader.map(NodeId),
                last_heartbeat: rt.now(),
                next_index: peers.iter().map(|p| (p.0, 1)).collect(),
                match_index: peers.iter().map(|p| (p.0, 0)).collect(),
                leader_epoch: 0,
            }),
            pending: RefCell::new(HashMap::new()),
            proposals: ProposalQueue::default(),
            apply_fn: RefCell::new(None),
            applied: Cell::new(0),
            stats: RaftStats::new(rt, group),
            rounds_launched: Cell::new(0),
            rounds_done: ValueEvent::labeled(rt, 0, "rounds_done"),
            append_inflight: RefCell::new(HashMap::new()),
            append_skips: RefCell::new(HashMap::new()),
            suspects: RefCell::new(HashMap::new()),
            verified_index: Cell::new(0),
            append_ticket: Cell::new(0),
            append_turn: ValueEvent::labeled(rt, 0, "append_turn"),
            committed_count: Cell::new(0),
            election_penalty: Cell::new(Duration::ZERO),
            group,
        });
        if cfg.bootstrap_leader.is_some() {
            // Pre-seed term 1 so bootstrap leadership is term-consistent.
            core.log.set_term_vote(1, cfg.bootstrap_leader);
            if bootstrap_role == Role::Leader {
                core.note_became_leader();
            }
        }
        core
    }

    /// Installs the state-machine apply function.
    pub fn set_apply(&self, f: impl FnMut(&Entry) -> Bytes + 'static) {
        *self.apply_fn.borrow_mut() = Some(Box::new(f));
    }

    /// Namespaces `base` into this core's group: the method id every
    /// register/call site of this group must use, so co-located groups on
    /// one endpoint never collide (see [`depfast_rpc::group_method`]).
    pub fn method(&self, base: Method) -> Method {
        group_method(base, self.group)
    }

    /// The group id to stamp on this core's [`depfast::HealthEvent`]s:
    /// `Some(group)` for multi-group cores, `None` for the legacy
    /// single-group namespace (keeps old incident artifacts byte-identical).
    pub fn health_group(&self) -> Option<u32> {
        (self.group > 0).then_some(self.group)
    }

    /// Majority size of the cluster.
    pub fn majority(&self) -> usize {
        self.members.len() / 2 + 1
    }

    /// `true` if this node currently believes it is leader.
    pub fn is_leader(&self) -> bool {
        self.st.borrow().role == Role::Leader
    }

    /// Last known leader, if any.
    pub fn leader_hint(&self) -> Option<NodeId> {
        self.st.borrow().leader_hint
    }

    /// Entries applied to the state machine so far.
    pub fn applied(&self) -> u64 {
        self.applied.get()
    }

    /// An event that fires once the state machine has applied everything
    /// up to `index` (immediately if it already has).
    pub fn wait_applied(&self, index: u64) -> EventHandle {
        self.applied_idx.when_at_least(index)
    }

    /// Submits a client command. The returned event fires `Ok(reply)` once
    /// the command is committed and applied, or `Err` immediately if this
    /// node is not the leader.
    pub fn propose(&self, payload: Bytes) -> TypedEvent<Bytes> {
        let ev: TypedEvent<Bytes> = TypedEvent::new(&self.rt, EventKind::Notify, "proposal");
        if !self.is_leader() {
            ev.fire_err();
            return ev;
        }
        self.proposals.push((payload, ev.clone()));
        ev
    }

    /// Marks this node leader: bumps the epoch and resets peer indices.
    pub fn note_became_leader(&self) {
        let epoch = {
            let mut st = self.st.borrow_mut();
            st.role = Role::Leader;
            st.leader_hint = Some(self.id);
            let last = self.log.last_index();
            for p in &self.peers {
                st.next_index.insert(p.0, last + 1);
                st.match_index.insert(p.0, 0);
            }
            st.leader_epoch += 1;
            st.leader_epoch
        };
        // Fresh leadership: quarantine and window state belong to the old
        // term's view of the peers.
        self.suspects.borrow_mut().clear();
        self.append_inflight.borrow_mut().clear();
        self.leader_gen.set(epoch);
    }

    /// Steps down to follower in `term` (observed a higher term).
    pub fn step_down(&self, term: u64, leader: Option<NodeId>) {
        if term > self.log.current_term() {
            self.log.set_term_vote(term, None);
        }
        let was_leader = {
            let mut st = self.st.borrow_mut();
            let was = st.role == Role::Leader;
            st.role = Role::Follower;
            if leader.is_some() {
                st.leader_hint = leader;
            }
            was
        };
        if was_leader {
            self.proposals.fail_all();
            // Fail in log-index order: HashMap drain order varies per
            // process and would wake waiting proposers nondeterministically.
            let mut drained: Vec<_> = self.pending.borrow_mut().drain().collect();
            drained.sort_unstable_by_key(|(idx, _)| *idx);
            for (_, ev) in drained {
                ev.fire_err();
            }
        }
    }

    /// Advances the commit index from the match indices (plus own log).
    ///
    /// Only entries of the current term commit by counting, per the Raft
    /// safety rule.
    pub fn advance_commit_from_matches(&self) {
        let mut matches: Vec<u64> = {
            let st = self.st.borrow();
            st.match_index.values().copied().collect()
        };
        matches.push(self.log.last_index());
        matches.sort_unstable_by(|a, b| b.cmp(a));
        let m = matches[self.majority() - 1];
        if m > self.commit.get() && self.log.term_at(m) == self.log.current_term() {
            self.set_commit(m);
        }
    }

    /// Sets the commit index (monotonic) and counts newly committed
    /// entries.
    pub fn set_commit(&self, index: u64) {
        use depfast::event::Watchable;
        let old = self.commit.get();
        if index > old {
            self.committed_count
                .set(self.committed_count.get() + (index - old));
            self.stats.commit_index.set(index as i64);
            // Commit lag of each newly committed proposal still pending
            // here (the leader): proposal creation → commit.
            let now = self.rt.now();
            let pending = self.pending.borrow();
            for i in (old + 1)..=index {
                if let Some(ev) = pending.get(&i) {
                    self.stats.commit_lag.record(now - ev.handle().created_at());
                }
            }
            drop(pending);
            self.commit.set(index);
        }
    }

    /// Starts the apply loop: waits for the commit index to pass the last
    /// applied entry, reads, charges apply CPU, applies, and completes any
    /// pending client proposal at that index.
    pub fn spawn_apply_loop(self: &Rc<Self>) {
        let core = self.clone();
        Coroutine::create(&self.rt, "raft:apply", async move {
            loop {
                let target = core.applied.get() + 1;
                let gate = core.commit.when_at_least(target);
                gate.wait().await;
                let hi = core.commit.get();
                let Ok(entries) = core.log.read(target, hi + 1).await else {
                    break; // Crashed.
                };
                for e in entries {
                    if core.world.cpu(core.id, core.cfg.apply_cpu).await.is_err() {
                        return;
                    }
                    let reply = {
                        let mut f = core.apply_fn.borrow_mut();
                        match f.as_mut() {
                            Some(f) => f(&e),
                            None => Bytes::new(),
                        }
                    };
                    core.applied.set(e.index);
                    core.stats.applied_index.set(e.index as i64);
                    core.applied_idx.set(e.index);
                    let pending = core.pending.borrow_mut().remove(&e.index);
                    if let Some(ev) = pending {
                        core.record_apply_lag(&ev);
                        ev.fire_ok(reply);
                    }
                }
            }
        });
    }

    /// Applies every committed-but-unapplied entry *in the calling
    /// coroutine*, charging apply CPU there. Legacy drivers run this on
    /// their single region/message thread — faithful to the architectures
    /// whose blocking the paper documents — whereas DepFastRaft uses the
    /// detached [`RaftCore::spawn_apply_loop`].
    pub async fn apply_committed_inline(self: &Rc<Self>) -> Result<(), simkit::Crashed> {
        let hi = self.commit.get();
        let lo = self.applied.get() + 1;
        if lo > hi {
            return Ok(());
        }
        let entries = self
            .log
            .read(lo, hi + 1)
            .await
            .map_err(|_| simkit::Crashed)?;
        for e in entries {
            self.world.cpu(self.id, self.cfg.apply_cpu).await?;
            let reply = {
                let mut f = self.apply_fn.borrow_mut();
                match f.as_mut() {
                    Some(f) => f(&e),
                    None => Bytes::new(),
                }
            };
            self.applied.set(e.index);
            self.stats.applied_index.set(e.index as i64);
            self.applied_idx.set(e.index);
            let pending = self.pending.borrow_mut().remove(&e.index);
            if let Some(ev) = pending {
                self.record_apply_lag(&ev);
                ev.fire_ok(reply);
            }
        }
        Ok(())
    }

    /// Records `raft.apply_lag` for a completed proposal: creation →
    /// state-machine apply (what the client experiences as latency).
    fn record_apply_lag(&self, ev: &TypedEvent<Bytes>) {
        use depfast::event::Watchable;
        self.stats
            .apply_lag
            .record(self.rt.now() - ev.handle().created_at());
    }

    /// Registers the follower-side `AppendEntries` and `RequestVote`
    /// services (identical across drivers).
    pub fn install_follower_services(self: &Rc<Self>) {
        let core = self.clone();
        self.ep.register(
            self.method(APPEND_ENTRIES),
            "raft:handle_append",
            move |from, payload, responder| {
                let core = core.clone();
                let Some(req) = AppendReq::from_bytes(&payload) else {
                    return;
                };
                // Ticket taken here, synchronously at delivery, so the
                // ordered section of `handle_append` runs in arrival order
                // regardless of coroutine scheduling.
                let ticket = core.append_ticket.get();
                core.append_ticket.set(ticket + 1);
                Coroutine::create(&core.rt.clone(), "raft:handle_append", async move {
                    if let Some(resp) = handle_append(&core, from, req, ticket).await {
                        responder.reply_t(&resp);
                    }
                });
            },
        );
        let core = self.clone();
        self.ep.register(
            self.method(REQUEST_VOTE),
            "raft:handle_vote",
            move |_from, payload, responder| {
                let core = core.clone();
                let Some(req) = VoteReq::from_bytes(&payload) else {
                    return;
                };
                Coroutine::create(&core.rt.clone(), "raft:handle_vote", async move {
                    if let Some(resp) = handle_vote(&core, req).await {
                        responder.reply_t(&resp);
                    }
                });
            },
        );
        let core = self.clone();
        self.ep.register(
            self.method(PRE_VOTE),
            "raft:handle_prevote",
            move |_from, payload, responder| {
                let core = core.clone();
                let Some(req) = VoteReq::from_bytes(&payload) else {
                    return;
                };
                Coroutine::create(&core.rt.clone(), "raft:handle_prevote", async move {
                    if let Some(resp) = handle_prevote(&core, req).await {
                        responder.reply_t(&resp);
                    }
                });
            },
        );
    }

    /// Records a successful replication ack from `peer`.
    pub fn note_match(&self, peer: NodeId, match_index: u64) {
        let mut st = self.st.borrow_mut();
        let m = st.match_index.entry(peer.0).or_insert(0);
        if match_index > *m {
            *m = match_index;
        }
        let n = st.next_index.entry(peer.0).or_insert(1);
        if match_index + 1 > *n {
            *n = match_index + 1;
        }
    }

    /// Records a rejection hint from `peer`: back `next_index` up.
    ///
    /// Guarded against *stale* rejections (a reply computed long ago, when
    /// the peer was further behind, arriving after newer successes): the
    /// index never regresses below `match_index + 1`.
    pub fn note_reject(&self, peer: NodeId, hint: u64) {
        let mut st = self.st.borrow_mut();
        let floor = st.match_index.get(&peer.0).copied().unwrap_or(0) + 1;
        let n = st.next_index.entry(peer.0).or_insert(1);
        *n = (hint + 1).max(floor).min(self.log.last_index() + 1);
    }

    /// Snapshot of `next_index` for `peer`.
    pub fn next_index(&self, peer: NodeId) -> u64 {
        *self.st.borrow().next_index.get(&peer.0).unwrap_or(&1)
    }

    /// Snapshot of `match_index` for `peer`.
    pub fn match_index(&self, peer: NodeId) -> u64 {
        *self.st.borrow().match_index.get(&peer.0).unwrap_or(&0)
    }

    /// Optimistically advances `next_index` for `peer` past entries just
    /// shipped, so pipelined rounds do not re-send what is already in
    /// flight. A lost or rejected append self-corrects: the follower's
    /// reject hint (via [`RaftCore::note_reject`]) backs the index up.
    pub fn note_sent_through(&self, peer: NodeId, hi: u64) {
        let mut st = self.st.borrow_mut();
        let n = st.next_index.entry(peer.0).or_insert(1);
        if hi + 1 > *n {
            *n = hi + 1;
        }
    }

    /// Unresolved replication rounds (launched minus resolved).
    pub fn rounds_inflight(&self) -> u64 {
        self.rounds_launched
            .get()
            .saturating_sub(self.rounds_done.get())
    }

    /// Marks a replication round launched with `batch_entries` entries:
    /// feeds the `raft.batch.*` series and the pipeline gauge.
    pub fn note_round_launched(&self, batch_entries: usize) {
        let launched = self.rounds_launched.get() + 1;
        self.rounds_launched.set(launched);
        self.stats.batch_rounds.inc();
        self.stats.batch_size.record_ns(batch_entries as u64);
        self.stats
            .pipeline_inflight
            .set(launched.saturating_sub(self.rounds_done.get()) as i64);
    }

    /// Marks a replication round resolved (quorum reached, timed out, or
    /// leadership lost) and wakes the pipeline-depth gate.
    pub fn note_round_done(&self) {
        let done = self.rounds_done.get() + 1;
        self.stats
            .pipeline_inflight
            .set(self.rounds_launched.get().saturating_sub(done) as i64);
        self.rounds_done.set(done);
    }

    /// Records an intake stall at the pipeline-depth gate.
    pub fn note_pipeline_stall(&self) {
        self.stats.pipeline_stalls.inc();
    }

    /// Records the entry count of an outgoing non-empty `AppendEntries`
    /// (the `rpc.entries_per_append` series; empty heartbeats are not
    /// counted).
    pub fn note_entries_per_append(&self, n: usize) {
        if n > 0 {
            self.stats.entries_per_append.record_ns(n as u64);
        }
    }

    /// Claims an in-flight `AppendEntries` slot toward `peer`, or
    /// returns `false` when the per-follower window
    /// ([`RaftCfg::append_window`]) is full. Slots normally free when the
    /// classified reply fires (including the `Err` fired for discarded
    /// requests); because a reply can also *never* fire — lost after a
    /// successful send — stale slots additionally expire after
    /// `replicate_timeout`, so a fail-slow follower stalls only its own
    /// append stream and can never wedge the window shut.
    pub fn try_acquire_append_slot(&self, peer: NodeId) -> bool {
        let now = self.rt.now();
        let mut map = self.append_inflight.borrow_mut();
        let q = map.entry(peer.0).or_default();
        while let Some(t) = q.front() {
            if now - *t >= self.cfg.replicate_timeout {
                q.pop_front();
            } else {
                break;
            }
        }
        if q.len() >= self.cfg.append_window.max(1) {
            *self.append_skips.borrow_mut().entry(peer.0).or_insert(0) += 1;
            self.stats.window_skips.inc();
            false
        } else {
            q.push_back(now);
            true
        }
    }

    /// Frees one in-flight append slot toward `peer`.
    pub fn release_append_slot(&self, peer: NodeId) {
        if let Some(q) = self.append_inflight.borrow_mut().get_mut(&peer.0) {
            q.pop_front();
        }
    }

    /// Appends currently charged against `peer`'s window.
    pub fn append_inflight(&self, peer: NodeId) -> usize {
        self.append_inflight
            .borrow()
            .get(&peer.0)
            .map_or(0, |q| q.len())
    }

    /// Sends to `peer` skipped because its window was full.
    pub fn append_window_skips(&self, peer: NodeId) -> u64 {
        self.append_skips
            .borrow()
            .get(&peer.0)
            .copied()
            .unwrap_or(0)
    }

    /// Whether `peer` is quarantined into lazy-probe catch-up.
    pub fn is_suspect(&self, peer: NodeId) -> bool {
        self.suspects.borrow().contains_key(&peer.0)
    }

    /// Quarantines `peer`: a follower whose append window filled is no
    /// longer fed by pipelined rounds (each such send parks one of its
    /// append handlers behind its crawling disk). Instead the heartbeat
    /// loop polls it with lazy probes and re-feeds it with adaptively
    /// paced catch-up chunks (see [`RaftCore::suspect_plan`]); it rejoins
    /// normal replication once its lag shrinks. Optimistically advanced
    /// `next_index` is reset to the acked prefix.
    pub fn mark_suspect(&self, peer: NodeId) {
        {
            let mut map = self.suspects.borrow_mut();
            if map.contains_key(&peer.0) {
                return;
            }
            map.insert(
                peer.0,
                SuspectState {
                    chunk: self.cfg.batch_max.max(1),
                    pending: None,
                    next_chunk_at: self.rt.now(),
                    peer_verified: None,
                    // Pessimistic until the first probe reply proves the
                    // disk is keeping up: the window just filled, which
                    // is itself evidence it is not.
                    draining_fast: false,
                },
            );
        }
        let m = self.match_index(peer);
        self.st.borrow_mut().next_index.insert(peer.0, m + 1);
        self.append_inflight.borrow_mut().remove(&peer.0);
        self.stats.suspects.inc();
        self.rt.tracer().record_health(depfast::HealthEvent {
            t: self.rt.now(),
            node: peer,
            layer: "raft",
            transition: "quarantine",
            evidence: format!(
                "append window full; acked={} leader_last={}",
                m,
                self.log.last_index()
            ),
            group: self.health_group(),
        });
    }

    /// Lifts `peer`'s quarantine (normal replication resumes).
    pub fn clear_suspect(&self, peer: NodeId) {
        self.suspects.borrow_mut().remove(&peer.0);
    }

    /// Decides the next action toward a quarantined peer; `None` if the
    /// peer is not quarantined. Control law: probe with empty lazy
    /// appends (which cost the peer nothing but report its durable
    /// prefix) until the peer has drained everything delivered, then ship
    /// one catch-up chunk; a chunk that drains within ~a heartbeat ramps
    /// the chunk size (the disk recovered), a slow drain backs the pace
    /// off proportionally so a still-crawling disk is never saturated by
    /// its own catch-up stream.
    pub fn suspect_plan(&self, peer: NodeId) -> Option<SuspectAction> {
        let now = self.rt.now();
        let m = self.match_index(peer);
        let last = self.log.last_index();
        let mut map = self.suspects.borrow_mut();
        let s = map.get_mut(&peer.0)?;
        if s.draining_fast && last.saturating_sub(m) <= (2 * self.cfg.batch_max) as u64 {
            map.remove(&peer.0);
            self.rt.tracer().record_health(depfast::HealthEvent {
                t: now,
                node: peer,
                layer: "raft",
                transition: "resume",
                evidence: format!(
                    "lag {} entries; drain verified fast",
                    last.saturating_sub(m)
                ),
                group: self.health_group(),
            });
            return Some(SuspectAction::Resume);
        }
        if let Some((at, _)) = s.pending {
            if now - at >= self.cfg.replicate_timeout {
                // The chunk (or the probes observing it) went missing.
                s.pending = None;
                s.next_chunk_at = now + self.cfg.replicate_timeout;
            }
        }
        let drained = s.peer_verified.is_some_and(|v| m >= v);
        if s.pending.is_none() && drained && now >= s.next_chunk_at {
            let n = s.chunk;
            s.pending = Some((now, m + n as u64));
            Some(SuspectAction::Chunk { lo: m + 1, n })
        } else {
            Some(SuspectAction::Probe)
        }
    }

    /// Corrects the outstanding chunk's target after the send actually
    /// shipped entries through `hi` (the log may have had fewer than
    /// planned).
    pub fn suspect_chunk_sent(&self, peer: NodeId, hi: Option<u64>) {
        let mut map = self.suspects.borrow_mut();
        let Some(s) = map.get_mut(&peer.0) else {
            return;
        };
        match (hi, s.pending) {
            (Some(hi), Some((at, _))) => s.pending = Some((at, hi)),
            (None, _) => s.pending = None,
            _ => {}
        }
    }

    /// Digests a lazy reply from a quarantined peer: advances the acked
    /// prefix, learns the peer's verified index, and adapts the catch-up
    /// pace from how fast the outstanding chunk drained.
    pub fn suspect_on_reply(&self, peer: NodeId, resp: &AppendResp) {
        if resp.success {
            self.note_match(peer, resp.match_index);
            self.advance_commit_from_matches();
        } else {
            self.note_reject(peer, resp.match_index);
        }
        let now = self.rt.now();
        let mut map = self.suspects.borrow_mut();
        let Some(s) = map.get_mut(&peer.0) else {
            return;
        };
        s.peer_verified = Some(resp.verified.max(s.peer_verified.unwrap_or(0)));
        s.draining_fast = resp.success && resp.match_index >= resp.verified;
        if let Some((at, target)) = s.pending {
            if resp.success && resp.match_index >= target {
                let dt = now - at;
                let fast = self.cfg.heartbeat + self.cfg.heartbeat / 2;
                if dt <= fast {
                    s.chunk = (s.chunk * 2).min(self.cfg.max_entries_per_append);
                    s.next_chunk_at = now;
                } else {
                    s.chunk = (s.chunk / 2).max(self.cfg.batch_max.max(1));
                    s.next_chunk_at = now + (dt * 4).min(self.cfg.replicate_timeout);
                }
                s.pending = None;
            }
        }
    }
}

/// Leader-side catch-up state for one quarantined (suspect) peer.
struct SuspectState {
    /// Entries per catch-up chunk; ramps up on fast drains, backs off on
    /// slow ones.
    chunk: usize,
    /// Outstanding chunk: (send time, last index it carries).
    pending: Option<(SimTime, u64)>,
    /// Earliest time the next chunk may ship.
    next_chunk_at: SimTime,
    /// The peer's last reported verified index (`None` until the first
    /// lazy reply arrives).
    peer_verified: Option<u64>,
    /// Whether the peer's disk is keeping up: the latest lazy reply
    /// reported a fully durable log (`match_index >= verified`). Gating
    /// [`SuspectAction::Resume`] on this prevents the re-flood trap: a
    /// catch-up trickle can shrink the *lag* below the resume threshold
    /// while the disk is still crawling, and resuming then would park a
    /// fresh window of append handlers behind it all over again.
    draining_fast: bool,
}

/// What the leader should do next toward a quarantined peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuspectAction {
    /// Lag has shrunk: quarantine lifted, resume normal replication.
    Resume,
    /// Send an empty lazy probe (harvests the peer's durable prefix).
    Probe,
    /// Send a lazy catch-up chunk of `n` entries starting at `lo`.
    Chunk {
        /// First entry index of the chunk.
        lo: u64,
        /// Planned entry count.
        n: usize,
    },
}

/// Retires an append-processing ticket on every exit path of the ordered
/// section (including crash-induced early returns), releasing the next
/// ticket holder.
struct AppendTurn<'a> {
    core: &'a RaftCore,
    ticket: u64,
}

impl Drop for AppendTurn<'_> {
    fn drop(&mut self) {
        self.core.append_turn.set(self.ticket + 1);
    }
}

/// Retires `ticket` without entering the ordered section — used by exit
/// paths that never touch the log (stale term, crash). Retirement must
/// still happen *in order* (releasing ticket `k+1` before `k-1` finished
/// would defeat the ordering), so a late ticket retires from a helper
/// coroutine once its turn comes up, without delaying the reply.
fn retire_append_ticket(core: &Rc<RaftCore>, ticket: u64) {
    if core.append_turn.get() == ticket {
        core.append_turn.set(ticket + 1);
        return;
    }
    let c = core.clone();
    Coroutine::create(&core.rt.clone(), "raft:append_turn", async move {
        c.append_turn.when_at_least(ticket).wait().await;
        c.append_turn.set(ticket + 1);
    });
}

pub async fn handle_append(
    core: &Rc<RaftCore>,
    _from: NodeId,
    req: AppendReq,
    ticket: u64,
) -> Option<AppendResp> {
    let entry_count = req.entries.len();
    let cpu = core.cfg.append_cpu_base + core.cfg.append_cpu_per_entry * entry_count as u32;
    if core.world.cpu(core.id, cpu).await.is_err() {
        retire_append_ticket(core, ticket);
        return None;
    }

    let current = core.log.current_term();
    if req.term < current {
        retire_append_ticket(core, ticket);
        return Some(AppendResp {
            term: current,
            success: false,
            match_index: 0,
            verified: core.verified_index.get(),
        });
    }
    if req.term > current {
        core.step_down(req.term, Some(NodeId(req.leader)));
    } else if core.st.borrow().role != Role::Leader {
        let mut st = core.st.borrow_mut();
        st.role = Role::Follower;
        st.leader_hint = Some(NodeId(req.leader));
    }
    core.st.borrow_mut().last_heartbeat = core.rt.now();

    // Ordered section: log reads and mutations run strictly in arrival
    // order. With pipelined replication several appends are in flight at
    // once, and on a multi-core node a later small append's CPU can finish
    // before an earlier large one's — unordered processing would misread
    // the not-yet-applied prefix as a log-matching conflict and reject
    // endemically. CPU (above) and the durability wait (below) stay
    // concurrent; only the log section is serialized.
    core.append_turn.when_at_least(ticket).wait().await;
    let turn = AppendTurn { core, ticket };

    // Log-matching check.
    if req.prev_index > core.log.last_index() {
        return Some(AppendResp {
            term: core.log.current_term(),
            success: false,
            match_index: core.log.last_index(),
            verified: core.verified_index.get(),
        });
    }
    if req.prev_index > 0 && core.log.term_at(req.prev_index) != req.prev_term {
        core.log.truncate_from(req.prev_index);
        core.verified_index.set(
            core.verified_index
                .get()
                .min(req.prev_index.saturating_sub(1)),
        );
        return Some(AppendResp {
            term: core.log.current_term(),
            success: false,
            match_index: req.prev_index.saturating_sub(1),
            verified: core.verified_index.get(),
        });
    }

    // Append entries we do not already have (handling retries and
    // conflicts).
    let entries = from_wire(req.entries);
    let mut new = Vec::new();
    for e in entries {
        if e.index <= core.log.last_index() {
            if core.log.term_at(e.index) != e.term {
                core.log.truncate_from(e.index);
                core.verified_index
                    .set(core.verified_index.get().min(e.index - 1));
                new.push(e);
            }
        } else {
            new.push(e);
        }
    }
    let match_to = req.prev_index + entry_count as u64;
    if !new.is_empty() {
        core.log.append(&new);
    }
    // The whole span `[.., match_to]` is now log-match-verified against
    // the leader's stream (though its tail may not be durable yet).
    core.verified_index
        .set(core.verified_index.get().max(match_to));
    // Log mutation done: release the next append before the (potentially
    // slow) durability wait so acks pipeline on the follower too.
    drop(turn);

    // Lazy-ack mode (leader-side quarantine polling): never park behind
    // the local disk — report the durable prefix as it stands. This is
    // what keeps a fail-slow follower's wait profile from filling up with
    // parked append handlers: its durability progress is *polled* by
    // heartbeat-paced probes instead of *awaited* by per-append
    // coroutines.
    if req.lazy {
        let verified = core.verified_index.get();
        let durable = core.log.durable_index().min(verified);
        core.set_commit(req.commit.min(durable));
        return Some(AppendResp {
            term: core.log.current_term(),
            success: true,
            match_index: durable,
            verified,
        });
    }
    // Durability before acknowledging — including for retransmitted
    // entries whose original fsync is still queued. This wait is on the
    // node's own disk: a local wait, legitimate under the fail-slow
    // definition.
    if match_to > 0 && core.log.durable_index() < match_to {
        let gate = core.log.wait_durable(match_to.min(core.log.last_index()));
        if !gate.wait().await.is_ready() {
            return None;
        }
    }
    core.set_commit(req.commit.min(match_to));
    Some(AppendResp {
        term: core.log.current_term(),
        success: true,
        match_index: match_to,
        verified: core.verified_index.get(),
    })
}

/// Follower-side `PreVote`: a non-binding probe that grants only if this
/// node has *not* heard from a live leader recently and the candidate's
/// log is up to date. PreVote keeps a starved or partitioned node's
/// ever-firing election timer from disrupting a healthy cluster — without
/// it, a fail-slow follower that cannot process heartbeats campaigns at
/// ever-higher terms and repeatedly deposes the working leader.
pub async fn handle_prevote(core: &Rc<RaftCore>, req: VoteReq) -> Option<VoteResp> {
    core.world
        .cpu(core.id, core.cfg.append_cpu_base)
        .await
        .ok()?;
    let current = core.log.current_term();
    let fresh = {
        let st = core.st.borrow();
        st.role == Role::Leader || core.rt.now() - st.last_heartbeat < core.cfg.election_timeout.0
    };
    let up_to_date = {
        let my_last = core.log.last_index();
        let my_term = core.log.term_at(my_last);
        req.last_term > my_term || (req.last_term == my_term && req.last_index >= my_last)
    };
    Some(VoteResp {
        term: current,
        granted: !fresh && up_to_date && req.term > current,
    })
}

/// Follower-side `RequestVote` (returns `None` if the node crashed).
pub async fn handle_vote(core: &Rc<RaftCore>, req: VoteReq) -> Option<VoteResp> {
    core.world
        .cpu(core.id, core.cfg.append_cpu_base)
        .await
        .ok()?;
    let current = core.log.current_term();
    if req.term < current {
        return Some(VoteResp {
            term: current,
            granted: false,
        });
    }
    if req.term > current {
        core.step_down(req.term, None);
    }
    let up_to_date = {
        let my_last = core.log.last_index();
        let my_term = core.log.term_at(my_last);
        req.last_term > my_term || (req.last_term == my_term && req.last_index >= my_last)
    };
    let grant = up_to_date
        && match core.log.voted_for() {
            None => true,
            Some(v) => v == req.candidate,
        };
    if grant {
        use depfast::event::Watchable;
        let io = core.log.set_term_vote(req.term, Some(req.candidate));
        if !io.handle().wait().await.is_ready() {
            return None;
        }
        core.st.borrow_mut().last_heartbeat = core.rt.now();
    }
    Some(VoteResp {
        term: core.log.current_term(),
        granted: grant,
    })
}

/// Creates a classified view over an RPC reply: an event with RPC identity
/// (for the SPG) that fires `Ok`/`Err` according to `judge`, letting a
/// [`QuorumEvent`](depfast::QuorumEvent) count protocol-level outcomes
/// rather than mere reply arrival.
pub fn classified_reply<R: WireRead + 'static>(
    rt: &Runtime,
    ev: &RpcEvent,
    target: NodeId,
    label: &'static str,
    judge: impl FnOnce(Option<R>) -> bool + 'static,
) -> EventHandle {
    use depfast::event::Watchable;
    let derived = EventHandle::with_sampling(rt, EventKind::Rpc { target }, label, false);
    let d = derived.clone();
    let ev2 = ev.clone();
    ev.handle().on_fire(move |s| {
        let decoded: Option<R> = if s == Signal::Ok {
            ev2.take().and_then(|b| R::from_bytes(&b))
        } else {
            None
        };
        let ok = judge(decoded);
        d.fire(if ok { Signal::Ok } else { Signal::Err });
    });
    derived
}

/// The public, driver-agnostic server handle the KV layer talks to.
#[derive(Clone)]
pub struct RaftServer {
    core: Rc<RaftCore>,
    kind: crate::cluster::RaftKind,
}

impl RaftServer {
    /// Wraps a started core.
    pub fn new(core: Rc<RaftCore>, kind: crate::cluster::RaftKind) -> Self {
        RaftServer { core, kind }
    }

    /// The underlying core.
    pub fn core(&self) -> &Rc<RaftCore> {
        &self.core
    }

    /// Which driver runs this server.
    pub fn kind(&self) -> crate::cluster::RaftKind {
        self.kind
    }

    /// Submits a client command (see [`RaftCore::propose`]).
    pub fn propose(&self, payload: Bytes) -> TypedEvent<Bytes> {
        self.core.propose(payload)
    }

    /// `true` if this node believes it is leader.
    pub fn is_leader(&self) -> bool {
        self.core.is_leader()
    }

    /// This node's id.
    pub fn node(&self) -> NodeId {
        self.core.id
    }

    /// Last known leader.
    pub fn leader_hint(&self) -> Option<NodeId> {
        self.core.leader_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use depfast::event::Watchable;
    use depfast::Tracer;
    use depfast_rpc::endpoint::{Registry, RpcCfg};
    use simkit::{Sim, WorldCfg};

    fn one_node() -> (Sim, World, Rc<RaftCore>) {
        let sim = Sim::new(1);
        let world = World::new(sim.clone(), WorldCfg::default());
        let rt = Runtime::with_tracer(sim.clone(), NodeId(0), Tracer::new());
        let registry = Registry::new();
        let ep = Endpoint::new(&rt, &world, &registry, RpcCfg::default());
        let core = RaftCore::new(
            &rt,
            &world,
            &ep,
            vec![NodeId(0), NodeId(1), NodeId(2)],
            RaftCfg {
                bootstrap_leader: Some(0),
                ..RaftCfg::default()
            },
        );
        (sim, world, core)
    }

    #[test]
    fn majority_math() {
        let (_s, _w, core) = one_node();
        assert_eq!(core.majority(), 2);
    }

    #[test]
    fn propose_on_non_leader_fails_fast() {
        let (_s, _w, core) = one_node();
        core.step_down(2, None);
        let ev = core.propose(Bytes::from_static(b"x"));
        assert_eq!(ev.handle().fired(), Some(Signal::Err));
    }

    #[test]
    fn commit_advance_uses_median_match() {
        let (sim, _w, core) = one_node();
        core.log.append(&[
            Entry {
                term: 1,
                index: 1,
                payload: Bytes::new(),
            },
            Entry {
                term: 1,
                index: 2,
                payload: Bytes::new(),
            },
        ]);
        sim.run();
        core.note_match(NodeId(1), 1);
        core.advance_commit_from_matches();
        // self(2) + peer1(1) + peer2(0): median-of-majority = 1.
        assert_eq!(core.commit.get(), 1);
        core.note_match(NodeId(2), 2);
        core.advance_commit_from_matches();
        assert_eq!(core.commit.get(), 2);
    }

    #[test]
    fn commit_only_counts_current_term_entries() {
        let (sim, _w, core) = one_node();
        // Entry from an older term (term 0 < current term 1).
        core.log.append(&[Entry {
            term: 0,
            index: 1,
            payload: Bytes::new(),
        }]);
        sim.run();
        core.note_match(NodeId(1), 1);
        core.note_match(NodeId(2), 1);
        core.advance_commit_from_matches();
        assert_eq!(
            core.commit.get(),
            0,
            "old-term entry must not commit by counting"
        );
    }

    #[test]
    fn step_down_fails_pending_and_queued() {
        let (_s, _w, core) = one_node();
        let ev1 = core.propose(Bytes::from_static(b"a"));
        let ev2: TypedEvent<Bytes> = TypedEvent::new(&core.rt, EventKind::Notify, "p");
        core.pending.borrow_mut().insert(5, ev2.clone());
        core.step_down(9, Some(NodeId(1)));
        assert_eq!(ev1.handle().fired(), Some(Signal::Err));
        assert_eq!(ev2.handle().fired(), Some(Signal::Err));
        assert_eq!(core.leader_hint(), Some(NodeId(1)));
    }

    #[test]
    fn note_reject_backs_up_next_index() {
        let (sim, _w, core) = one_node();
        for i in 1..=10 {
            core.log.append(&[Entry {
                term: 1,
                index: i,
                payload: Bytes::new(),
            }]);
        }
        sim.run();
        core.note_became_leader();
        assert_eq!(core.next_index(NodeId(1)), 11);
        core.note_reject(NodeId(1), 3);
        assert_eq!(core.next_index(NodeId(1)), 4);
    }

    #[test]
    fn pop_batch_times_out_empty() {
        let (sim, _w, core) = one_node();
        let q = core.proposals.clone();
        let rt = core.rt.clone();
        let deadline = sim.now() + Duration::from_millis(10);
        let batch = sim.block_on(async move { q.pop_batch(&rt, 8, Some(deadline)).await });
        assert!(batch.is_empty());
        assert_eq!(sim.now().as_nanos(), 10_000_000);
    }

    #[test]
    fn pop_batch_wakes_on_push() {
        let (sim, _w, core) = one_node();
        let q = core.proposals.clone();
        let rt = core.rt.clone();
        let core2 = core.clone();
        let s = sim.clone();
        let out = sim.block_on(async move {
            s.spawn(async move {
                core2.proposals.push((
                    Bytes::from_static(b"x"),
                    TypedEvent::new(&core2.rt, EventKind::Notify, "p"),
                ));
            });
            q.pop_batch(&rt, 8, None).await
        });
        assert_eq!(out.len(), 1);
    }
}
