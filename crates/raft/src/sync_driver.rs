//! **SyncRaft** — the TiDB-style baseline.
//!
//! §2.2, first root cause: *"TiDB Raftstore uses a single thread for each
//! data region. A fail-slow follower could force the leader to read old
//! entries from the disk (those entries have been evicted from the
//! in-memory EntryCache), thus blocking the whole thread during the disk
//! I/O."*
//!
//! SyncRaft reproduces the pattern: one *region thread* (coroutine) owns
//! proposal intake, the local WAL wait, and the per-follower send
//! preparation — including the EntryCache read. When a follower lags
//! behind the cache floor, the resulting disk read happens **inline on the
//! region thread**, stalling every client of the region, even though the
//! commit rule itself only needs the healthy majority.

use std::rc::Rc;
use std::time::Duration;

use depfast::event::Watchable;
use depfast::runtime::Coroutine;
use depfast_storage::Entry;
use simkit::disk::DiskOp;

use crate::core::{classified_reply, RaftCore, Role};
use crate::types::{to_wire, AppendReq, AppendResp, APPEND_ENTRIES};

/// SyncRaft options.
#[derive(Debug, Clone, Copy)]
pub struct SyncOpts {
    /// Per-iteration deadline for the region thread's commit wait.
    pub commit_wait: Duration,
}

impl Default for SyncOpts {
    fn default() -> Self {
        SyncOpts {
            commit_wait: Duration::from_millis(500),
        }
    }
}

/// The SyncRaft driver (fixed leader; use `bootstrap_leader`).
pub struct SyncRaft;

impl SyncRaft {
    /// Starts SyncRaft coroutines on `core`.
    ///
    /// On the leader, *apply also runs on the region thread* (TiDB's
    /// raftstore architecture) — so anything that blocks the thread blocks
    /// the state machine too.
    pub fn start(core: &Rc<RaftCore>, opts: SyncOpts) {
        core.install_follower_services();
        if core.is_leader() {
            Self::spawn_region_thread(core, opts);
        } else {
            core.spawn_apply_loop();
        }
    }

    /// The single region thread: batch intake → sync local append → one
    /// sequential send-preparation pass (with inline cold reads) → commit
    /// wait.
    fn spawn_region_thread(core: &Rc<RaftCore>, opts: SyncOpts) {
        let core = core.clone();
        Coroutine::create(&core.rt.clone(), "raft:region_thread", async move {
            loop {
                if core.st.borrow().role != Role::Leader {
                    break;
                }
                let deadline = core.rt.now() + core.cfg.heartbeat;
                let batch = {
                    let _g = depfast::PhaseGuard::enter("intake");
                    core.proposals
                        .pop_batch(&core.rt, core.cfg.batch_max, Some(deadline))
                        .await
                };
                let cpu = core.cfg.propose_cpu * batch.len().max(1) as u32;
                if core.world.cpu(core.id, cpu).await.is_err() {
                    break;
                }
                let term = core.log.current_term();
                let start = core.log.last_index() + 1;
                let mut entries = Vec::with_capacity(batch.len());
                for (i, (payload, ev)) in batch.into_iter().enumerate() {
                    let index = start + i as u64;
                    entries.push(Entry {
                        term,
                        index,
                        payload,
                    });
                    core.pending.borrow_mut().insert(index, ev);
                }
                if !entries.is_empty() {
                    let phase = depfast::PhaseSpan::begin(&core.rt, "wal_append");
                    let io = core.log.append(&entries);
                    // Synchronous wait on the local WAL: the region thread
                    // does nothing else meanwhile.
                    if !io.handle().wait().await.is_ready() {
                        break;
                    }
                    phase.end();
                }
                let hi = core.log.last_index();

                // Sequential send preparation, one follower at a time.
                for peer in core.peers.clone() {
                    let next = core.next_index(peer);
                    let lo = next;
                    let send_hi = (hi + 1).min(lo + core.cfg.max_entries_per_append as u64);
                    let (to_send, miss_bytes) = core.log.read_raw(lo, send_hi);
                    if miss_bytes > 0 {
                        // THE ROOT CAUSE: the evicted-entry disk read runs
                        // inline on the region thread. Blame the follower
                        // whose lag forced the read below the cache floor.
                        let phase = depfast::PhaseSpan::begin_blaming(&core.rt, "cold_read", peer);
                        if core
                            .world
                            .disk(core.id, DiskOp::Read { bytes: miss_bytes })
                            .await
                            .is_err()
                        {
                            return;
                        }
                        phase.end();
                    }
                    core.note_entries_per_append(to_send.len());
                    let req = AppendReq {
                        term,
                        leader: core.id.0,
                        prev_index: lo - 1,
                        prev_term: core.log.term_at(lo - 1),
                        entries: to_wire(&to_send),
                        commit: core.commit.get(),
                        lazy: false,
                    };
                    let ev = core.ep.proxy(peer).call_t(
                        core.method(APPEND_ENTRIES),
                        "append_entries",
                        &req,
                    );
                    let c2 = core.clone();
                    // Replies are processed by hooks (the region thread
                    // does not wait for them individually).
                    classified_reply::<AppendResp>(
                        &core.rt,
                        &ev,
                        peer,
                        "append_entries",
                        move |resp| {
                            let Some(resp) = resp else { return false };
                            if resp.term > c2.log.current_term() {
                                c2.step_down(resp.term, None);
                                return false;
                            }
                            if resp.success {
                                c2.note_match(peer, resp.match_index);
                                c2.advance_commit_from_matches();
                                true
                            } else {
                                c2.note_reject(peer, resp.match_index);
                                false
                            }
                        },
                    );
                }
                if hi > core.commit.get() {
                    // Wait for this round's entries to commit before the
                    // next intake (single-threaded pipeline of depth one).
                    let phase = depfast::PhaseSpan::begin(&core.rt, "commit_wait");
                    core.commit
                        .when_at_least(hi)
                        .wait_timeout(opts.commit_wait)
                        .await;
                    phase.end();
                }
                // Apply on the region thread itself.
                let phase = depfast::PhaseSpan::begin(&core.rt, "apply");
                if core.apply_committed_inline().await.is_err() {
                    break;
                }
                phase.end();
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{build_cluster, RaftKind};
    use crate::core::RaftCfg;
    use bytes::Bytes;
    use depfast_storage::LogStoreCfg;
    use simkit::NodeId;
    use simkit::{Sim, World, WorldCfg};

    fn cluster(cache_bytes: u64) -> (Sim, World, crate::cluster::RaftCluster) {
        let sim = Sim::new(5);
        let world = World::new(
            sim.clone(),
            WorldCfg {
                nodes: 3,
                ..WorldCfg::default()
            },
        );
        let cfg = RaftCfg {
            bootstrap_leader: Some(0),
            log: LogStoreCfg {
                cache_bytes,
                ..LogStoreCfg::default()
            },
            ..RaftCfg::default()
        };
        let cl = build_cluster(&sim, &world, RaftKind::Sync, 3, cfg);
        (sim, world, cl)
    }

    fn drive(sim: &Sim, cl: &crate::cluster::RaftCluster, n: u32, size: usize) -> u32 {
        let mut committed = 0;
        for i in 0..n {
            let ev = cl.servers[0].propose(Bytes::from(vec![(i % 251) as u8; size]));
            let out = sim.block_on({
                let ev = ev.clone();
                async move { ev.handle().wait_timeout(Duration::from_secs(2)).await }
            });
            if out.is_ready() {
                committed += 1;
            }
        }
        committed
    }

    #[test]
    fn healthy_cluster_commits() {
        let (sim, _world, cl) = cluster(1 << 20);
        assert_eq!(drive(&sim, &cl, 30, 64), 30);
    }

    #[test]
    fn slow_follower_forces_cache_misses_on_leader() {
        let (sim, world, cl) = cluster(64 * 1024);
        // Slow follower 2's network egress so its acks lag and its
        // next_index falls behind the cache floor.
        world.set_egress_delay(NodeId(2), Duration::from_millis(400));
        drive(&sim, &cl, 200, 1024);
        let leader_log = &cl.servers[0].core().log;
        assert!(
            leader_log.cache_misses() > 0,
            "lagging follower should push reads below the cache floor"
        );
    }

    #[test]
    fn commits_continue_with_one_slow_follower() {
        let (sim, world, cl) = cluster(64 * 1024);
        world.set_cpu_quota(NodeId(1), 0.05);
        let committed = drive(&sim, &cl, 50, 256);
        assert_eq!(committed, 50, "majority commit must still work");
    }
}
