//! Property-based tests on the resource models' invariants.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use simkit::cpu::{CpuCfg, CpuModel};
use simkit::disk::{DiskCfg, DiskModel, DiskOp};
use simkit::memory::{MemCfg, MemoryModel};
use simkit::net::{NetCfg, NetModel};
use simkit::{NodeId, SimTime};
use std::time::Duration;

proptest! {
    /// CPU completions never precede submission, and total busy time
    /// equals the sum of effective service times.
    #[test]
    fn cpu_completions_causal(
        cores in 1usize..8,
        jobs in prop::collection::vec((0u64..10_000, 0u64..5_000), 1..40),
    ) {
        let mut cpu = CpuModel::new(CpuCfg { cores });
        let mut now = SimTime::ZERO;
        for (gap, work) in jobs {
            now += Duration::from_micros(gap);
            let fin = cpu.schedule(now, Duration::from_micros(work), 1.0);
            prop_assert!(fin >= now);
            prop_assert!(fin >= now + Duration::from_micros(work));
        }
    }

    /// With one core, jobs finish in submission order (FIFO).
    #[test]
    fn single_core_is_fifo(
        jobs in prop::collection::vec(1u64..5_000, 2..30),
    ) {
        let mut cpu = CpuModel::new(CpuCfg { cores: 1 });
        let mut last = SimTime::ZERO;
        for work in jobs {
            let fin = cpu.schedule(SimTime::ZERO, Duration::from_micros(work), 1.0);
            prop_assert!(fin >= last);
            last = fin;
        }
    }

    /// More cores never make any individual job finish later.
    #[test]
    fn more_cores_never_hurt(
        jobs in prop::collection::vec(1u64..5_000, 1..30),
    ) {
        let run = |cores: usize| -> Vec<SimTime> {
            let mut cpu = CpuModel::new(CpuCfg { cores });
            jobs.iter()
                .map(|w| cpu.schedule(SimTime::ZERO, Duration::from_micros(*w), 1.0))
                .collect()
        };
        let narrow = run(2);
        let wide = run(4);
        for (n, w) in narrow.iter().zip(&wide) {
            prop_assert!(w <= n, "wider machine slower: {w:?} > {n:?}");
        }
    }

    /// Disk queue is strictly FIFO and completions are causal.
    #[test]
    fn disk_fifo_and_causal(
        ops in prop::collection::vec((0u64..3, 1u64..1_000_000), 1..40),
    ) {
        let mut disk = DiskModel::new(DiskCfg::default());
        let mut last = SimTime::ZERO;
        for (kind, bytes) in ops {
            let op = match kind {
                0 => DiskOp::Write { bytes },
                1 => DiskOp::Fsync { bytes },
                _ => DiskOp::Read { bytes },
            };
            let fin = disk.schedule(SimTime::ZERO, op, 1.0);
            prop_assert!(fin >= last, "queue must be FIFO");
            last = fin;
        }
    }

    /// Memory accounting never goes negative and never exceeds the limit.
    #[test]
    fn memory_accounting_bounded(
        ops in prop::collection::vec((any::<bool>(), 1u64..1_000), 1..100),
    ) {
        let mut mem = MemoryModel::new(MemCfg {
            limit: 10_000,
            baseline: 1_000,
            swap_threshold: 0.8,
            swap_max_slowdown: 5.0,
        });
        for (is_alloc, bytes) in ops {
            if is_alloc {
                let _ = mem.alloc(bytes);
            } else {
                mem.free(bytes);
            }
            prop_assert!(mem.used() <= 10_000);
            prop_assert!(mem.slowdown() >= 1.0);
            prop_assert!(mem.slowdown() <= 5.0);
            prop_assert!(mem.peak() >= mem.used());
        }
    }

    /// Per-link network delivery preserves FIFO order for any message mix.
    #[test]
    fn net_fifo_per_link(
        msgs in prop::collection::vec((0u64..1_000, 0u64..100_000), 1..50),
        seed in any::<u64>(),
    ) {
        let mut net = NetModel::new(NetCfg::default());
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut now = SimTime::ZERO;
        let mut last_delivery = SimTime::ZERO;
        for (gap, bytes) in msgs {
            now += Duration::from_micros(gap);
            let d = net
                .delivery_time(now, NodeId(0), NodeId(1), bytes, &mut rng)
                .expect("no partition");
            prop_assert!(d >= now, "delivery before send");
            prop_assert!(d >= last_delivery, "FIFO violated");
            last_delivery = d;
        }
    }

    /// Partitions drop everything; healing restores everything.
    #[test]
    fn partitions_are_symmetric(a in 0u32..4, b in 0u32..4, seed in any::<u64>()) {
        prop_assume!(a != b);
        let mut net = NetModel::new(NetCfg::default());
        let mut rng = SmallRng::seed_from_u64(seed);
        net.partition(NodeId(a), NodeId(b));
        prop_assert!(net
            .delivery_time(SimTime::ZERO, NodeId(a), NodeId(b), 0, &mut rng)
            .is_none());
        prop_assert!(net
            .delivery_time(SimTime::ZERO, NodeId(b), NodeId(a), 0, &mut rng)
            .is_none());
        net.heal(NodeId(a), NodeId(b));
        prop_assert!(net
            .delivery_time(SimTime::ZERO, NodeId(a), NodeId(b), 0, &mut rng)
            .is_some());
    }
}
