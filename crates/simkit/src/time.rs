//! Virtual time.
//!
//! The simulator never reads the wall clock: every timestamp is a
//! [`SimTime`], a nanosecond count since simulation start. Durations are
//! ordinary [`std::time::Duration`] values, which keeps call sites readable
//! (`t + Duration::from_millis(5)`).

use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// An instant on the simulation's virtual clock, in nanoseconds since start.
///
/// `SimTime` is a plain 64-bit counter: it is `Copy`, totally ordered and
/// cheap to pass around. At nanosecond resolution it can represent ~584
/// years of virtual time, far beyond any experiment in this repository.
///
/// # Examples
///
/// ```
/// use simkit::SimTime;
/// use std::time::Duration;
///
/// let t = SimTime::ZERO + Duration::from_millis(3);
/// assert_eq!(t.as_nanos(), 3_000_000);
/// assert_eq!(t - SimTime::ZERO, Duration::from_millis(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from a raw nanosecond count.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }

    /// Creates an instant from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Creates an instant from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the instant as fractional seconds (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating duration since an earlier instant.
    ///
    /// Returns [`Duration::ZERO`] if `earlier` is in the future, mirroring
    /// [`std::time::Instant::saturating_duration_since`].
    pub fn saturating_duration_since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.as_nanos() as u64)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.as_nanos() as u64;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;

    fn sub(self, rhs: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(rhs.0))
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let secs = self.0 / 1_000_000_000;
        let millis = (self.0 % 1_000_000_000) / 1_000_000;
        write!(f, "{secs}.{millis:03}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimTime::from_nanos(9).as_nanos(), 9);
    }

    #[test]
    fn arithmetic_is_consistent() {
        let a = SimTime::from_millis(10);
        let b = a + Duration::from_millis(15);
        assert_eq!(b - a, Duration::from_millis(15));
        // Subtraction saturates rather than panicking.
        assert_eq!(a - b, Duration::ZERO);
        assert_eq!(a.saturating_duration_since(b), Duration::ZERO);
        assert_eq!(b.saturating_duration_since(a), Duration::from_millis(15));
    }

    #[test]
    fn ordering_and_max() {
        let a = SimTime::from_micros(1);
        let b = SimTime::from_micros(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn display_formats_seconds() {
        let t = SimTime::from_millis(1234);
        assert_eq!(t.to_string(), "1.234s");
    }
}
