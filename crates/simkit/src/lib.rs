//! Deterministic discrete-event simulation substrate for the DepFast
//! reproduction.
//!
//! `simkit` provides everything below the DepFast programming model:
//!
//! * a virtual clock ([`SimTime`]) and a single-threaded, deterministic
//!   async executor ([`Sim`]) that advances time only when every runnable
//!   task has yielded,
//! * seeded randomness so that whole-cluster experiments replay exactly,
//! * resource models for the four hardware components the paper's Table 1
//!   injects fail-slow faults into: [`cpu`], [`disk`], [`memory`] and
//!   [`net`],
//! * a [`World`] that wires per-node resource models and a
//!   shared network into one simulated cluster.
//!
//! The substrate replaces the paper's Azure testbed (see `DESIGN.md` §1):
//! fail-slow faults are *performance* faults, so a discrete-event simulator
//! that distorts service times the same way `cgroup`/`tc` would reproduces
//! the behaviour the paper measures, deterministically and far faster than
//! real time.

pub mod cpu;
pub mod disk;
pub mod executor;
pub mod memory;
pub mod net;
pub mod time;
pub mod world;

pub use cpu::CpuCfg;
pub use disk::DiskCfg;
pub use executor::{JoinHandle, Sim, Sleep};
pub use memory::MemCfg;
pub use net::NetCfg;
pub use time::SimTime;
pub use world::{NodeId, ResourceKind, ResourceObservation, ResourceProbe, World, WorldCfg};

/// Convenience alias for the non-`Send` boxed futures the executor runs.
pub type LocalBoxFuture<T> = std::pin::Pin<Box<dyn std::future::Future<Output = T>>>;

/// Error returned by resource operations on a crashed node.
///
/// A node crashes when it is explicitly killed (fail-stop injection) or when
/// its [`memory::MemoryModel`] hits the out-of-memory limit — the mechanism
/// behind the paper's observation that "fail-slow faults on CPUs crashed the
/// leader" in RethinkDB (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crashed;

impl std::fmt::Display for Crashed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node has crashed")
    }
}

impl std::error::Error for Crashed {}
