//! Disk model: a single FIFO device queue with bandwidth and latency.
//!
//! Table 1's two disk fail-slow modes map onto this model as follows:
//!
//! * **Disk (slow)** — "use cgroup to limit disk I/O bandwidth available
//!   for the RSM process": [`DiskModel::set_bw_factor`] scales the
//!   process-visible bandwidth down.
//! * **Disk (contention)** — "run a contending program that writes heavily
//!   on the shared disk": the fault injector submits large background
//!   writes through the same FIFO queue, so foreground `fsync`s wait
//!   behind them exactly as they would on a shared device.
//!
//! Writes are buffered (cheap) and `fsync` pays for the accumulated dirty
//! bytes, which mirrors how journaling databases interact with the page
//! cache and lets group commit show up naturally in the simulation.

use std::time::Duration;

use crate::time::SimTime;

/// Static disk configuration for one node.
#[derive(Debug, Clone, Copy)]
pub struct DiskCfg {
    /// Fixed cost of any I/O request (submission + device latency).
    pub base_latency: Duration,
    /// Extra fixed cost of a flush barrier.
    pub fsync_latency: Duration,
    /// Sequential bandwidth in bytes per second.
    pub bandwidth_bps: f64,
}

impl Default for DiskCfg {
    fn default() -> Self {
        // Roughly a premium cloud SSD: ~100 µs access, ~200 MB/s.
        DiskCfg {
            base_latency: Duration::from_micros(80),
            fsync_latency: Duration::from_micros(120),
            bandwidth_bps: 200.0 * 1024.0 * 1024.0,
        }
    }
}

/// A disk I/O request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskOp {
    /// Buffered write of `bytes` (cheap until fsynced).
    Write { bytes: u64 },
    /// Flush barrier paying for `bytes` of dirty data.
    Fsync { bytes: u64 },
    /// Read of `bytes` that misses the page cache.
    Read { bytes: u64 },
}

/// Per-node disk state: FIFO queue tail plus fault knobs.
#[derive(Debug, Clone)]
pub struct DiskModel {
    cfg: DiskCfg,
    bw_factor: f64,
    queue_free_at: SimTime,
    /// Cumulative bytes written, for reporting.
    bytes_written: u64,
    /// Cumulative operations served.
    ops: u64,
}

impl DiskModel {
    /// Creates an idle disk.
    pub fn new(cfg: DiskCfg) -> Self {
        assert!(cfg.bandwidth_bps > 0.0, "bandwidth must be positive");
        DiskModel {
            cfg,
            bw_factor: 1.0,
            queue_free_at: SimTime::ZERO,
            bytes_written: 0,
            ops: 0,
        }
    }

    /// Sets the bandwidth factor in `(0, 1]` (1.0 = unrestricted).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not in `(0, 1]`.
    pub fn set_bw_factor(&mut self, factor: f64) {
        assert!(factor > 0.0 && factor <= 1.0, "factor must be in (0, 1]");
        self.bw_factor = factor;
    }

    /// Current effective bandwidth in bytes/second.
    pub fn effective_bandwidth(&self) -> f64 {
        self.cfg.bandwidth_bps * self.bw_factor
    }

    /// Total bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Total operations served so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Instant at which the FIFO queue drains: the start time the next
    /// request would get. Exposed so the world can observe per-request
    /// queueing delay.
    pub fn queue_free_at(&self) -> SimTime {
        self.queue_free_at
    }

    /// Service time of `op` in isolation (no queueing).
    pub fn service_time(&self, op: DiskOp) -> Duration {
        let bw = self.effective_bandwidth();
        let transfer = |bytes: u64| Duration::from_nanos((bytes as f64 / bw * 1e9) as u64);
        match op {
            // A buffered write only pays the submission cost; the data
            // transfer cost is deferred to the next fsync.
            DiskOp::Write { .. } => self.cfg.base_latency,
            DiskOp::Fsync { bytes } => {
                self.cfg.base_latency + self.cfg.fsync_latency + transfer(bytes)
            }
            DiskOp::Read { bytes } => self.cfg.base_latency + transfer(bytes),
        }
    }

    /// Enqueues `op` behind everything already queued and returns its
    /// completion instant. `slowdown` is the memory-pressure multiplier.
    pub fn schedule(&mut self, now: SimTime, op: DiskOp, slowdown: f64) -> SimTime {
        let service = self.service_time(op);
        let effective = Duration::from_nanos((service.as_nanos() as f64 * slowdown) as u64);
        let start = now.max(self.queue_free_at);
        let finish = start + effective;
        self.queue_free_at = finish;
        self.ops += 1;
        if let DiskOp::Write { bytes } | DiskOp::Fsync { bytes } = op {
            self.bytes_written += bytes;
        }
        finish
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> DiskModel {
        DiskModel::new(DiskCfg {
            base_latency: Duration::from_micros(100),
            fsync_latency: Duration::from_micros(100),
            bandwidth_bps: 1_000_000.0, // 1 MB/s for easy arithmetic
        })
    }

    #[test]
    fn buffered_write_pays_only_base_latency() {
        let mut d = disk();
        let f = d.schedule(SimTime::ZERO, DiskOp::Write { bytes: 500_000 }, 1.0);
        assert_eq!(f, SimTime::from_micros(100));
    }

    #[test]
    fn fsync_pays_for_dirty_bytes() {
        let mut d = disk();
        // 1 MB at 1 MB/s = 1 s transfer + 200 µs fixed.
        let f = d.schedule(SimTime::ZERO, DiskOp::Fsync { bytes: 1_000_000 }, 1.0);
        assert_eq!(f, SimTime::from_micros(1_000_200));
    }

    #[test]
    fn fifo_queueing_serializes_requests() {
        let mut d = disk();
        let a = d.schedule(SimTime::ZERO, DiskOp::Read { bytes: 1_000_000 }, 1.0);
        let b = d.schedule(SimTime::ZERO, DiskOp::Read { bytes: 1_000_000 }, 1.0);
        assert_eq!(a, SimTime::from_micros(1_000_100));
        assert_eq!(b, SimTime::from_micros(2_000_200));
    }

    #[test]
    fn bandwidth_factor_slows_transfers() {
        let mut d = disk();
        d.set_bw_factor(0.1);
        let f = d.schedule(SimTime::ZERO, DiskOp::Read { bytes: 1_000_000 }, 1.0);
        // 1 MB at 0.1 MB/s = 10 s.
        assert_eq!(f, SimTime::from_micros(10_000_100));
    }

    #[test]
    fn slowdown_multiplier_applies() {
        let mut d = disk();
        let f = d.schedule(SimTime::ZERO, DiskOp::Write { bytes: 1 }, 2.0);
        assert_eq!(f, SimTime::from_micros(200));
    }

    #[test]
    fn counters_accumulate() {
        let mut d = disk();
        d.schedule(SimTime::ZERO, DiskOp::Write { bytes: 10 }, 1.0);
        d.schedule(SimTime::ZERO, DiskOp::Fsync { bytes: 10 }, 1.0);
        d.schedule(SimTime::ZERO, DiskOp::Read { bytes: 99 }, 1.0);
        assert_eq!(d.bytes_written(), 20);
        assert_eq!(d.ops(), 3);
    }

    #[test]
    fn contending_writes_delay_foreground_fsync() {
        let mut d = disk();
        // Background contender floods the queue.
        d.schedule(SimTime::ZERO, DiskOp::Fsync { bytes: 5_000_000 }, 1.0);
        // Foreground fsync of 1 KB now waits ~5 s behind it.
        let f = d.schedule(SimTime::ZERO, DiskOp::Fsync { bytes: 1_000 }, 1.0);
        assert!(f > SimTime::from_secs(5));
    }
}
