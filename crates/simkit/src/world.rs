//! The simulated cluster: per-node resource models plus a shared network.
//!
//! A [`World`] owns one [`CpuModel`], [`DiskModel`] and [`MemoryModel`] per
//! node and a single [`NetModel`]. Higher layers (the RPC framework, the
//! storage engine, the fault injector) talk to the world rather than to the
//! models directly, so every resource interaction goes through one place
//! where fail-slow distortion, memory-pressure slowdown and crash checks
//! compose.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use bytes::Bytes;
use depfast_metrics::{Counter, Gauge, HistogramHandle, MetricsRegistry};

use crate::cpu::{CpuCfg, CpuModel};
use crate::disk::{DiskCfg, DiskModel, DiskOp};
use crate::executor::Sim;
use crate::memory::{MemCfg, MemoryModel, Oom};
use crate::net::{NetCfg, NetModel};
use crate::Crashed;

/// Identifier of a simulated node (server or client host).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Configuration of a whole simulated cluster.
#[derive(Debug, Clone, Copy)]
pub struct WorldCfg {
    /// Number of nodes.
    pub nodes: usize,
    /// Per-node CPU configuration.
    pub cpu: CpuCfg,
    /// Per-node disk configuration.
    pub disk: DiskCfg,
    /// Per-node memory configuration.
    pub mem: MemCfg,
    /// Shared network configuration.
    pub net: NetCfg,
}

impl Default for WorldCfg {
    fn default() -> Self {
        WorldCfg {
            nodes: 3,
            cpu: CpuCfg::default(),
            disk: DiskCfg::default(),
            mem: MemCfg::default(),
            net: NetCfg::default(),
        }
    }
}

/// A message in flight between two nodes.
#[derive(Debug, Clone)]
pub struct NetMessage {
    /// Sending node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Serialized payload.
    pub payload: Bytes,
}

/// Cached metric handles for one node's substrate series (`sim.*` in the
/// metric namespace — see `docs/OBSERVABILITY.md`). Caching keeps the
/// hot paths free of registry lookups.
struct NodeStats {
    cpu_wait: HistogramHandle,
    cpu_service: HistogramHandle,
    disk_wait: HistogramHandle,
    disk_service: HistogramHandle,
    disk_bytes: Counter,
    disk_ops: Counter,
    mem_used: Gauge,
    mem_slowdown_milli: Gauge,
    net_delay: HistogramHandle,
    net_msgs: Counter,
    net_bytes: Counter,
}

impl NodeStats {
    fn new(registry: &MetricsRegistry, node: u32) -> Self {
        let scope = registry.node(node);
        NodeStats {
            cpu_wait: scope.histogram("sim.cpu.wait"),
            cpu_service: scope.histogram("sim.cpu.service"),
            disk_wait: scope.histogram("sim.disk.wait"),
            disk_service: scope.histogram("sim.disk.service"),
            disk_bytes: scope.counter("sim.disk.bytes"),
            disk_ops: scope.counter("sim.disk.ops"),
            mem_used: scope.gauge("sim.mem.used"),
            mem_slowdown_milli: scope.gauge("sim.mem.slowdown_milli"),
            net_delay: scope.histogram("sim.net.delay"),
            net_msgs: scope.counter("sim.net.msgs"),
            net_bytes: scope.counter("sim.net.bytes"),
        }
    }

    fn observe_mem(&self, mem: &MemoryModel) {
        self.mem_used.set(mem.used() as i64);
        self.mem_slowdown_milli
            .set((mem.slowdown() * 1000.0) as i64);
    }
}

struct NodeState {
    cpu: CpuModel,
    disk: DiskModel,
    mem: MemoryModel,
    crashed: bool,
    stats: NodeStats,
}

/// Which simulated resource a [`ResourceObservation`] concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResourceKind {
    /// A [`CpuModel`] work item.
    Cpu,
    /// A [`DiskModel`] operation.
    Disk,
}

impl ResourceKind {
    /// Short name for reports (`"cpu"` / `"disk"`).
    pub fn name(self) -> &'static str {
        match self {
            ResourceKind::Cpu => "cpu",
            ResourceKind::Disk => "disk",
        }
    }
}

/// One resource interaction, delivered synchronously to an installed
/// [resource probe](World::set_resource_probe) at schedule time (i.e.
/// inside the calling task's poll, before the completion is awaited).
///
/// `wait` is queueing delay (run-queue / device-queue), `service` the
/// effective busy time including fail-slow and swap inflation.
#[derive(Debug, Clone, Copy)]
pub struct ResourceObservation {
    /// Node whose resource was used.
    pub node: NodeId,
    /// Which resource.
    pub resource: ResourceKind,
    /// Queueing delay before service began.
    pub wait: Duration,
    /// Effective service time (after distortion multipliers).
    pub service: Duration,
    /// Memory-pressure swap multiplier in effect (1.0 = none).
    pub slowdown: f64,
}

/// Callback receiving every CPU/disk interaction while installed.
pub type ResourceProbe = Rc<dyn Fn(&ResourceObservation)>;

type Handler = Rc<dyn Fn(NetMessage)>;

struct WorldInner {
    nodes: Vec<NodeState>,
    net: NetModel,
    handlers: Vec<Option<Handler>>,
    metrics: MetricsRegistry,
    resource_probe: Option<ResourceProbe>,
}

/// Handle to the simulated cluster. Cheap to clone.
#[derive(Clone)]
pub struct World {
    sim: Sim,
    inner: Rc<RefCell<WorldInner>>,
}

impl World {
    /// Builds a cluster of `cfg.nodes` identical nodes on `sim`.
    pub fn new(sim: Sim, cfg: WorldCfg) -> Self {
        let metrics = MetricsRegistry::new();
        let nodes = (0..cfg.nodes)
            .map(|i| NodeState {
                cpu: CpuModel::new(cfg.cpu),
                disk: DiskModel::new(cfg.disk),
                mem: MemoryModel::new(cfg.mem),
                crashed: false,
                stats: NodeStats::new(&metrics, i as u32),
            })
            .collect();
        World {
            sim,
            inner: Rc::new(RefCell::new(WorldInner {
                nodes,
                net: NetModel::new(cfg.net),
                handlers: vec![None; cfg.nodes],
                metrics,
                resource_probe: None,
            })),
        }
    }

    /// The underlying simulator handle.
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// A token identifying this world instance: clones share it, distinct
    /// worlds differ. Layers that keep per-world side state (e.g. the
    /// fault injector's ownership of resource knobs) key it by this.
    pub fn uid(&self) -> usize {
        Rc::as_ptr(&self.inner) as usize
    }

    /// The cluster-shared metric registry. Every resource interaction on
    /// this world records into it under `sim.*` names; higher layers
    /// (RPC, the event runtime, Raft drivers) adopt the same registry so
    /// one snapshot covers the whole stack.
    pub fn metrics(&self) -> MetricsRegistry {
        self.inner.borrow().metrics.clone()
    }

    /// Number of nodes in the cluster.
    pub fn node_count(&self) -> usize {
        self.inner.borrow().nodes.len()
    }

    /// All node ids.
    pub fn node_ids(&self) -> Vec<NodeId> {
        (0..self.node_count() as u32).map(NodeId).collect()
    }

    fn check(&self, node: NodeId) -> Result<(), Crashed> {
        if self.inner.borrow().nodes[node.0 as usize].crashed {
            Err(Crashed)
        } else {
            Ok(())
        }
    }

    /// Returns `true` if `node` has crashed.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.inner.borrow().nodes[node.0 as usize].crashed
    }

    /// Kills `node`: all of its pending and future operations fail and
    /// messages to or from it are dropped.
    pub fn crash(&self, node: NodeId) {
        self.inner.borrow_mut().nodes[node.0 as usize].crashed = true;
    }

    /// Installs (or, with `None`, removes) the resource probe: a callback
    /// invoked synchronously for every CPU/disk interaction on this world,
    /// at schedule time and hence inside the polling task (so ambient
    /// per-coroutine attribution in higher layers is still in scope). The
    /// wait-state profiler owns it for the duration of a profiled run.
    pub fn set_resource_probe(&self, probe: Option<ResourceProbe>) {
        self.inner.borrow_mut().resource_probe = probe;
    }

    fn probe_resource(&self, obs: ResourceObservation) {
        // Clone the probe out so the callback runs without the world borrow.
        let probe = self.inner.borrow().resource_probe.clone();
        if let Some(p) = probe {
            p(&obs);
        }
    }

    /// Executes `work` of CPU time on `node`, queueing on its cores and
    /// paying the current fail-slow and swap multipliers.
    pub async fn cpu(&self, node: NodeId, work: Duration) -> Result<(), Crashed> {
        self.check(node)?;
        let (finish, obs) = {
            let now = self.sim.now();
            let mut inner = self.inner.borrow_mut();
            let state = &mut inner.nodes[node.0 as usize];
            let slowdown = state.mem.slowdown();
            let start = now.max(state.cpu.next_free_at());
            let finish = state.cpu.schedule(now, work, slowdown);
            state.stats.cpu_wait.record(start - now);
            state.stats.cpu_service.record(finish - start);
            (
                finish,
                ResourceObservation {
                    node,
                    resource: ResourceKind::Cpu,
                    wait: start - now,
                    service: finish - start,
                    slowdown,
                },
            )
        };
        self.probe_resource(obs);
        self.sim.sleep_until(finish).await;
        self.check(node)
    }

    /// Performs a disk operation on `node`'s FIFO device queue.
    pub async fn disk(&self, node: NodeId, op: DiskOp) -> Result<(), Crashed> {
        self.check(node)?;
        let (finish, obs) = {
            let now = self.sim.now();
            let mut inner = self.inner.borrow_mut();
            let state = &mut inner.nodes[node.0 as usize];
            let slowdown = state.mem.slowdown();
            let start = now.max(state.disk.queue_free_at());
            let finish = state.disk.schedule(now, op, slowdown);
            state.stats.disk_wait.record(start - now);
            state.stats.disk_service.record(finish - start);
            state.stats.disk_ops.inc();
            if let DiskOp::Write { bytes } | DiskOp::Fsync { bytes } = op {
                state.stats.disk_bytes.add(bytes);
            }
            (
                finish,
                ResourceObservation {
                    node,
                    resource: ResourceKind::Disk,
                    wait: start - now,
                    service: finish - start,
                    slowdown,
                },
            )
        };
        self.probe_resource(obs);
        self.sim.sleep_until(finish).await;
        self.check(node)
    }

    /// Accounts `bytes` of new memory usage on `node`.
    pub fn mem_alloc(&self, node: NodeId, bytes: u64) -> Result<(), Oom> {
        let mut inner = self.inner.borrow_mut();
        let state = &mut inner.nodes[node.0 as usize];
        let res = state.mem.alloc(bytes);
        state.stats.observe_mem(&state.mem);
        res
    }

    /// Releases `bytes` of memory usage on `node`.
    pub fn mem_free(&self, node: NodeId, bytes: u64) {
        let mut inner = self.inner.borrow_mut();
        let state = &mut inner.nodes[node.0 as usize];
        state.mem.free(bytes);
        state.stats.observe_mem(&state.mem);
    }

    /// Current memory usage of `node` in bytes.
    pub fn mem_used(&self, node: NodeId) -> u64 {
        self.inner.borrow().nodes[node.0 as usize].mem.used()
    }

    /// Peak memory usage of `node` in bytes.
    pub fn mem_peak(&self, node: NodeId) -> u64 {
        self.inner.borrow().nodes[node.0 as usize].mem.peak()
    }

    /// Current swap-penalty multiplier of `node`.
    pub fn mem_slowdown(&self, node: NodeId) -> f64 {
        self.inner.borrow().nodes[node.0 as usize].mem.slowdown()
    }

    /// Registers the delivery handler for messages addressed to `node`.
    ///
    /// The handler runs on the executor thread between task polls; it
    /// should only enqueue and wake, never block.
    pub fn register_handler(&self, node: NodeId, handler: impl Fn(NetMessage) + 'static) {
        self.inner.borrow_mut().handlers[node.0 as usize] = Some(Rc::new(handler));
    }

    /// Sends `payload` from `from` to `to`. Delivery is asynchronous; the
    /// message is silently dropped if the link is partitioned or either
    /// end has crashed by delivery time.
    pub fn send(&self, from: NodeId, to: NodeId, payload: Bytes) {
        if self.is_crashed(from) {
            return;
        }
        let deliver_at = {
            let mut inner = self.inner.borrow_mut();
            let now = self.sim.now();
            let bytes = payload.len() as u64;
            let WorldInner { net, nodes, .. } = &mut *inner;
            let at = self
                .sim
                .with_rng(|rng| net.delivery_time(now, from, to, bytes, rng));
            let stats = &nodes[from.0 as usize].stats;
            stats.net_msgs.inc();
            stats.net_bytes.add(bytes);
            if let Some(at) = at {
                stats.net_delay.record(at - now);
            }
            at
        };
        let Some(at) = deliver_at else { return };
        let world = self.clone();
        self.sim.schedule_call(at, move || {
            if world.is_crashed(to) || world.is_crashed(from) {
                return;
            }
            let handler = world.inner.borrow().handlers[to.0 as usize].clone();
            if let Some(h) = handler {
                h(NetMessage { from, to, payload });
            }
        });
    }

    // ------------------------------------------------------------------
    // Fault-injection knobs (used by `depfast-fault`).
    // ------------------------------------------------------------------

    /// Sets the cgroup-style CPU quota of `node` (Table 1, "CPU (slow)").
    pub fn set_cpu_quota(&self, node: NodeId, quota: f64) {
        self.inner.borrow_mut().nodes[node.0 as usize]
            .cpu
            .set_quota(quota);
    }

    /// Sets or clears CPU contention on `node` (Table 1, "CPU (contention)").
    pub fn set_cpu_contention(&self, node: NodeId, share: Option<f64>) {
        self.inner.borrow_mut().nodes[node.0 as usize]
            .cpu
            .set_contention(share);
    }

    /// Sets the disk bandwidth factor of `node` (Table 1, "Disk (slow)").
    pub fn set_disk_bw_factor(&self, node: NodeId, factor: f64) {
        self.inner.borrow_mut().nodes[node.0 as usize]
            .disk
            .set_bw_factor(factor);
    }

    /// Sets the memory limit of `node` (Table 1, "Memory (contention)").
    pub fn set_mem_limit(&self, node: NodeId, limit: u64) {
        let mut inner = self.inner.borrow_mut();
        let state = &mut inner.nodes[node.0 as usize];
        state.mem.set_limit(limit);
        state.stats.observe_mem(&state.mem);
    }

    /// Restores the configured memory limit of `node`.
    pub fn reset_mem_limit(&self, node: NodeId) {
        let mut inner = self.inner.borrow_mut();
        let state = &mut inner.nodes[node.0 as usize];
        state.mem.reset_limit();
        state.stats.observe_mem(&state.mem);
    }

    /// Sets the `tc`-style egress delay of `node` (Table 1, "Network (slow)").
    pub fn set_egress_delay(&self, node: NodeId, delay: Duration) {
        self.inner.borrow_mut().net.set_egress_delay(node, delay);
    }

    /// Severs the link between `a` and `b`.
    pub fn partition(&self, a: NodeId, b: NodeId) {
        self.inner.borrow_mut().net.partition(a, b);
    }

    /// Heals the link between `a` and `b`.
    pub fn heal(&self, a: NodeId, b: NodeId) {
        self.inner.borrow_mut().net.heal(a, b);
    }

    // ------------------------------------------------------------------
    // Reporting.
    // ------------------------------------------------------------------

    /// Total messages accepted by the network so far.
    pub fn net_messages(&self) -> u64 {
        self.inner.borrow().net.messages()
    }

    /// Total payload bytes accepted by the network so far.
    pub fn net_bytes(&self) -> u64 {
        self.inner.borrow().net.bytes()
    }

    /// Total bytes written to `node`'s disk so far.
    pub fn disk_bytes_written(&self, node: NodeId) -> u64 {
        self.inner.borrow().nodes[node.0 as usize]
            .disk
            .bytes_written()
    }

    /// Isolated (no-queueing) service time of `op` on `node`'s disk.
    pub fn disk_service_time(&self, node: NodeId, op: DiskOp) -> Duration {
        self.inner.borrow().nodes[node.0 as usize]
            .disk
            .service_time(op)
    }

    /// Current effective CPU rate multiplier of `node`.
    pub fn cpu_rate(&self, node: NodeId) -> f64 {
        self.inner.borrow().nodes[node.0 as usize].cpu.rate()
    }

    /// CPU utilization of `node` over a window ending now (fraction of
    /// all cores busy, assuming the node was busy only within `window`).
    pub fn cpu_utilization(&self, node: NodeId, window: std::time::Duration) -> f64 {
        self.inner.borrow().nodes[node.0 as usize]
            .cpu
            .utilization(window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn world() -> (Sim, World) {
        let sim = Sim::new(42);
        let cfg = WorldCfg {
            nodes: 3,
            net: NetCfg {
                base_latency: Duration::from_micros(100),
                jitter: Duration::ZERO,
                bandwidth_bps: 1e9,
                hiccup_prob: 0.0,
                hiccup_delay: Duration::ZERO,
            },
            ..WorldCfg::default()
        };
        let w = World::new(sim.clone(), cfg);
        (sim, w)
    }

    #[test]
    fn cpu_work_advances_time() {
        let (sim, w) = world();
        let w2 = w.clone();
        sim.block_on(async move {
            w2.cpu(NodeId(0), Duration::from_millis(2)).await.unwrap();
        });
        assert_eq!(sim.now(), SimTime::from_millis(2));
    }

    #[test]
    fn cpu_quota_fault_slows_node() {
        let (sim, w) = world();
        w.set_cpu_quota(NodeId(0), 0.05);
        let w2 = w.clone();
        sim.block_on(async move {
            w2.cpu(NodeId(0), Duration::from_millis(1)).await.unwrap();
        });
        assert_eq!(sim.now(), SimTime::from_millis(20));
    }

    #[test]
    fn crashed_node_operations_fail() {
        let (sim, w) = world();
        w.crash(NodeId(1));
        let w2 = w.clone();
        let res = sim.block_on(async move { w2.cpu(NodeId(1), Duration::from_millis(1)).await });
        assert_eq!(res, Err(Crashed));
    }

    #[test]
    fn messages_are_delivered_with_latency() {
        let (sim, w) = world();
        let got: Rc<RefCell<Vec<(NodeId, Bytes)>>> = Rc::new(RefCell::new(Vec::new()));
        let got2 = got.clone();
        w.register_handler(NodeId(1), move |m| {
            got2.borrow_mut().push((m.from, m.payload));
        });
        w.send(NodeId(0), NodeId(1), Bytes::from_static(b"hello"));
        sim.run();
        assert_eq!(got.borrow().len(), 1);
        assert_eq!(got.borrow()[0].0, NodeId(0));
        assert!(sim.now() >= SimTime::from_micros(100));
    }

    #[test]
    fn messages_to_crashed_node_are_dropped() {
        let (sim, w) = world();
        let hit = Rc::new(RefCell::new(0));
        let hit2 = hit.clone();
        w.register_handler(NodeId(1), move |_| *hit2.borrow_mut() += 1);
        w.send(NodeId(0), NodeId(1), Bytes::from_static(b"x"));
        w.crash(NodeId(1));
        sim.run();
        assert_eq!(*hit.borrow(), 0);
    }

    #[test]
    fn partition_blocks_traffic() {
        let (sim, w) = world();
        let hit = Rc::new(RefCell::new(0));
        let hit2 = hit.clone();
        w.register_handler(NodeId(2), move |_| *hit2.borrow_mut() += 1);
        w.partition(NodeId(0), NodeId(2));
        w.send(NodeId(0), NodeId(2), Bytes::from_static(b"x"));
        sim.run();
        assert_eq!(*hit.borrow(), 0);
        w.heal(NodeId(0), NodeId(2));
        w.send(NodeId(0), NodeId(2), Bytes::from_static(b"x"));
        sim.run();
        assert_eq!(*hit.borrow(), 1);
    }

    #[test]
    fn memory_pressure_slows_cpu() {
        let (sim, w) = world();
        let limit = w.mem_used(NodeId(0)) + 100;
        w.set_mem_limit(NodeId(0), limit);
        w.mem_alloc(NodeId(0), 100).unwrap();
        assert!(w.mem_slowdown(NodeId(0)) > 1.0);
        let w2 = w.clone();
        sim.block_on(async move {
            w2.cpu(NodeId(0), Duration::from_millis(1)).await.unwrap();
        });
        assert!(sim.now() > SimTime::from_millis(1));
    }

    #[test]
    fn substrate_metrics_attribute_disk_queueing_to_the_right_node() {
        let (sim, w) = world();
        let m = w.metrics();
        // Two concurrent fsyncs on node 1: the FIFO queue forces the
        // second to wait behind the first.
        for _ in 0..2 {
            let w2 = w.clone();
            sim.spawn(async move {
                w2.disk(NodeId(1), DiskOp::Fsync { bytes: 1_000_000 })
                    .await
                    .unwrap();
            });
        }
        sim.run();
        let waited = m.node(1).histogram("sim.disk.wait");
        assert_eq!(waited.snapshot().count, 2);
        assert!(waited.snapshot().max_ns > 0, "second fsync must queue");
        // Node 0 never touched its disk: its series stays empty.
        assert_eq!(m.node(0).histogram("sim.disk.wait").snapshot().count, 0);
        assert_eq!(m.node(1).counter("sim.disk.ops").get(), 2);
        assert_eq!(m.node(1).counter("sim.disk.bytes").get(), 2_000_000);
    }

    #[test]
    fn substrate_metrics_expose_cpu_contention_stalls() {
        let (sim, w) = world();
        let m = w.metrics();
        w.set_cpu_quota(NodeId(0), 0.05);
        let w2 = w.clone();
        sim.block_on(async move {
            w2.cpu(NodeId(0), Duration::from_millis(1)).await.unwrap();
        });
        let svc = m.node(0).histogram("sim.cpu.service").snapshot();
        // 1 ms of work at 5% quota inflates to 20 ms of service time.
        assert_eq!(svc.max_ns, 20_000_000);
    }

    #[test]
    fn substrate_metrics_track_memory_pressure() {
        let (_sim, w) = world();
        let m = w.metrics();
        let base = w.mem_used(NodeId(2));
        w.set_mem_limit(NodeId(2), base + 100);
        w.mem_alloc(NodeId(2), 100).unwrap();
        assert_eq!(m.node(2).gauge("sim.mem.used").get(), (base + 100) as i64);
        assert!(m.node(2).gauge("sim.mem.slowdown_milli").get() > 1000);
        w.mem_free(NodeId(2), 100);
        assert_eq!(m.node(2).gauge("sim.mem.used").get(), base as i64);
    }

    #[test]
    fn substrate_metrics_record_network_sends() {
        let (sim, w) = world();
        let m = w.metrics();
        w.register_handler(NodeId(1), |_| {});
        w.send(NodeId(0), NodeId(1), Bytes::from_static(b"hello"));
        sim.run();
        assert_eq!(m.node(0).counter("sim.net.msgs").get(), 1);
        assert_eq!(m.node(0).counter("sim.net.bytes").get(), 5);
        let delay = m.node(0).histogram("sim.net.delay").snapshot();
        assert_eq!(delay.count, 1);
        assert!(delay.max_ns >= 100_000, "base latency is 100 µs");
    }

    #[test]
    fn resource_probe_observes_queueing_and_service() {
        let (sim, w) = world();
        let seen: Rc<RefCell<Vec<ResourceObservation>>> = Rc::new(RefCell::new(Vec::new()));
        let s = seen.clone();
        w.set_resource_probe(Some(Rc::new(move |o: &ResourceObservation| {
            s.borrow_mut().push(*o);
        })));
        // Two concurrent fsyncs on node 1: FIFO queueing makes the second
        // observation carry nonzero wait.
        for _ in 0..2 {
            let w2 = w.clone();
            sim.spawn(async move {
                w2.disk(NodeId(1), DiskOp::Fsync { bytes: 1_000_000 })
                    .await
                    .unwrap();
            });
        }
        let w2 = w.clone();
        sim.spawn(async move {
            w2.cpu(NodeId(0), Duration::from_millis(1)).await.unwrap();
        });
        sim.run();
        let obs = seen.borrow();
        assert_eq!(obs.len(), 3);
        let disk: Vec<_> = obs
            .iter()
            .filter(|o| o.resource == ResourceKind::Disk)
            .collect();
        assert_eq!(disk.len(), 2);
        assert!(disk.iter().all(|o| o.node == NodeId(1)));
        assert_eq!(disk[0].wait, Duration::ZERO);
        assert!(disk[1].wait > Duration::ZERO, "second fsync must queue");
        let cpu: Vec<_> = obs
            .iter()
            .filter(|o| o.resource == ResourceKind::Cpu)
            .collect();
        assert_eq!(cpu.len(), 1);
        assert_eq!(cpu[0].node, NodeId(0));
        assert_eq!(cpu[0].service, Duration::from_millis(1));
        drop(obs);
        // Removing the probe stops delivery.
        w.set_resource_probe(None);
        let w2 = w.clone();
        sim.spawn(async move {
            w2.cpu(NodeId(0), Duration::from_millis(1)).await.unwrap();
        });
        sim.run();
        assert_eq!(seen.borrow().len(), 3);
    }

    #[test]
    fn egress_delay_slows_only_faulty_sender() {
        let (sim, w) = world();
        let stamp: Rc<RefCell<Vec<SimTime>>> = Rc::new(RefCell::new(Vec::new()));
        let s2 = stamp.clone();
        let sim2 = sim.clone();
        w.register_handler(NodeId(0), move |_| s2.borrow_mut().push(sim2.now()));
        w.set_egress_delay(NodeId(1), Duration::from_millis(400));
        w.send(NodeId(1), NodeId(0), Bytes::from_static(b"slow"));
        w.send(NodeId(2), NodeId(0), Bytes::from_static(b"fast"));
        sim.run();
        let st = stamp.borrow();
        assert_eq!(st.len(), 2);
        assert!(st[0] < SimTime::from_millis(1)); // fast arrives first
        assert!(st[1] >= SimTime::from_millis(400));
    }
}
