//! Network model: per-link latency, bandwidth, FIFO ordering, injected
//! delay, transient hiccups and partitions.
//!
//! Table 1's **network (slow)** fault — "add a delay of 400 milliseconds to
//! the network interface using `tc`" — is modelled as an *egress* delay on
//! the faulty node: every message it sends arrives that much later, exactly
//! what `tc netem` does to an interface.
//!
//! The model also injects rare, small, seeded "hiccups" on healthy links.
//! §2.2 (third root cause) observes that with three-node deployments,
//! "transient performance issues on the other follower inevitably prolong
//! the tail" once one follower fails slow; the hiccup knob is what lets the
//! simulation reproduce that tail amplification.

use std::collections::{HashMap, HashSet};
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::Rng;

use crate::time::SimTime;
use crate::world::NodeId;

/// Static network configuration shared by all links.
#[derive(Debug, Clone, Copy)]
pub struct NetCfg {
    /// One-way propagation latency of a healthy intra-DC link.
    pub base_latency: Duration,
    /// Uniform per-message jitter in `[0, jitter)`.
    pub jitter: Duration,
    /// Link bandwidth in bytes per second.
    pub bandwidth_bps: f64,
    /// Probability that a message experiences a transient hiccup.
    pub hiccup_prob: f64,
    /// Extra delay a hiccup adds.
    pub hiccup_delay: Duration,
}

impl Default for NetCfg {
    fn default() -> Self {
        NetCfg {
            base_latency: Duration::from_micros(250),
            jitter: Duration::from_micros(60),
            bandwidth_bps: 1.0e9,
            hiccup_prob: 0.0008,
            hiccup_delay: Duration::from_millis(4),
        }
    }
}

fn pair(a: NodeId, b: NodeId) -> (u32, u32) {
    if a.0 <= b.0 {
        (a.0, b.0)
    } else {
        (b.0, a.0)
    }
}

/// The shared network state of a simulated cluster.
#[derive(Debug)]
pub struct NetModel {
    cfg: NetCfg,
    egress_delay: HashMap<u32, Duration>,
    link_extra: HashMap<(u32, u32), Duration>,
    fifo_tail: HashMap<(u32, u32), SimTime>,
    partitioned: HashSet<(u32, u32)>,
    messages: u64,
    bytes: u64,
}

impl NetModel {
    /// Creates a fully-connected healthy network.
    pub fn new(cfg: NetCfg) -> Self {
        assert!(cfg.bandwidth_bps > 0.0, "bandwidth must be positive");
        NetModel {
            cfg,
            egress_delay: HashMap::new(),
            link_extra: HashMap::new(),
            fifo_tail: HashMap::new(),
            partitioned: HashSet::new(),
            messages: 0,
            bytes: 0,
        }
    }

    /// Sets (or clears, with [`Duration::ZERO`]) the `tc`-style egress
    /// delay of `node`.
    pub fn set_egress_delay(&mut self, node: NodeId, delay: Duration) {
        if delay.is_zero() {
            self.egress_delay.remove(&node.0);
        } else {
            self.egress_delay.insert(node.0, delay);
        }
    }

    /// Sets extra one-way delay on the (undirected) link `a`–`b`.
    pub fn set_link_delay(&mut self, a: NodeId, b: NodeId, delay: Duration) {
        if delay.is_zero() {
            self.link_extra.remove(&pair(a, b));
        } else {
            self.link_extra.insert(pair(a, b), delay);
        }
    }

    /// Severs the link `a`–`b` (messages are dropped).
    pub fn partition(&mut self, a: NodeId, b: NodeId) {
        self.partitioned.insert(pair(a, b));
    }

    /// Heals the link `a`–`b`.
    pub fn heal(&mut self, a: NodeId, b: NodeId) {
        self.partitioned.remove(&pair(a, b));
    }

    /// Returns `true` if the link `a`–`b` is currently partitioned.
    pub fn is_partitioned(&self, a: NodeId, b: NodeId) -> bool {
        self.partitioned.contains(&pair(a, b))
    }

    /// Total messages accepted so far.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Total payload bytes accepted so far.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Computes the delivery instant of a message sent now, or `None` if
    /// the link is partitioned.
    ///
    /// Delivery preserves per-link FIFO order (a later message never
    /// arrives before an earlier one on the same directed link), modelling
    /// a TCP connection.
    pub fn delivery_time(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        bytes: u64,
        rng: &mut SmallRng,
    ) -> Option<SimTime> {
        if self.is_partitioned(from, to) {
            return None;
        }
        self.messages += 1;
        self.bytes += bytes;
        let mut delay = self.cfg.base_latency;
        if !self.cfg.jitter.is_zero() {
            delay += Duration::from_nanos(rng.random_range(0..self.cfg.jitter.as_nanos() as u64));
        }
        delay += Duration::from_nanos((bytes as f64 / self.cfg.bandwidth_bps * 1e9) as u64);
        if let Some(d) = self.egress_delay.get(&from.0) {
            delay += *d;
        }
        if let Some(d) = self.link_extra.get(&pair(from, to)) {
            delay += *d;
        }
        if self.cfg.hiccup_prob > 0.0 && rng.random::<f64>() < self.cfg.hiccup_prob {
            delay += self.cfg.hiccup_delay;
        }
        let at = now + delay;
        let tail = self
            .fifo_tail
            .entry((from.0, to.0))
            .or_insert(SimTime::ZERO);
        let deliver = at.max(*tail);
        *tail = deliver;
        Some(deliver)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn net() -> (NetModel, SmallRng) {
        let cfg = NetCfg {
            base_latency: Duration::from_micros(100),
            jitter: Duration::ZERO,
            bandwidth_bps: 1_000_000.0,
            hiccup_prob: 0.0,
            hiccup_delay: Duration::ZERO,
        };
        (NetModel::new(cfg), SmallRng::seed_from_u64(7))
    }

    const A: NodeId = NodeId(0);
    const B: NodeId = NodeId(1);

    #[test]
    fn base_latency_plus_transfer() {
        let (mut n, mut rng) = net();
        // 1000 bytes at 1 MB/s = 1 ms transfer + 100 µs base.
        let t = n
            .delivery_time(SimTime::ZERO, A, B, 1000, &mut rng)
            .unwrap();
        assert_eq!(t, SimTime::from_micros(1100));
    }

    #[test]
    fn egress_delay_applies_to_sender_only() {
        let (mut n, mut rng) = net();
        n.set_egress_delay(B, Duration::from_millis(400));
        let fwd = n.delivery_time(SimTime::ZERO, A, B, 0, &mut rng).unwrap();
        let back = n.delivery_time(SimTime::ZERO, B, A, 0, &mut rng).unwrap();
        assert_eq!(fwd, SimTime::from_micros(100));
        assert_eq!(back, SimTime::from_micros(400_100));
    }

    #[test]
    fn fifo_ordering_is_preserved_per_link() {
        let (mut n, mut rng) = net();
        let big = n
            .delivery_time(SimTime::ZERO, A, B, 10_000_000, &mut rng)
            .unwrap();
        let small = n.delivery_time(SimTime::ZERO, A, B, 1, &mut rng).unwrap();
        assert!(small >= big, "later message must not overtake");
    }

    #[test]
    fn partition_drops_messages_and_heals() {
        let (mut n, mut rng) = net();
        n.partition(A, B);
        assert!(n.delivery_time(SimTime::ZERO, A, B, 0, &mut rng).is_none());
        assert!(n.delivery_time(SimTime::ZERO, B, A, 0, &mut rng).is_none());
        n.heal(A, B);
        assert!(n.delivery_time(SimTime::ZERO, A, B, 0, &mut rng).is_some());
    }

    #[test]
    fn link_delay_is_undirected() {
        let (mut n, mut rng) = net();
        n.set_link_delay(A, B, Duration::from_millis(10));
        let fwd = n.delivery_time(SimTime::ZERO, A, B, 0, &mut rng).unwrap();
        let back = n.delivery_time(SimTime::ZERO, B, A, 0, &mut rng).unwrap();
        assert_eq!(fwd, SimTime::from_micros(10_100));
        // FIFO tail is per directed link, so the reverse is independent.
        assert_eq!(back, SimTime::from_micros(10_100));
    }

    #[test]
    fn counters_accumulate() {
        let (mut n, mut rng) = net();
        n.delivery_time(SimTime::ZERO, A, B, 10, &mut rng);
        n.delivery_time(SimTime::ZERO, A, B, 20, &mut rng);
        assert_eq!(n.messages(), 2);
        assert_eq!(n.bytes(), 30);
    }

    #[test]
    fn hiccups_fire_with_configured_probability() {
        let cfg = NetCfg {
            base_latency: Duration::from_micros(100),
            jitter: Duration::ZERO,
            bandwidth_bps: 1e12,
            hiccup_prob: 0.5,
            hiccup_delay: Duration::from_millis(100),
        };
        let mut n = NetModel::new(cfg);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut hiccups = 0;
        for _ in 0..1000 {
            // Use distinct links to avoid FIFO coupling.
            let t = n.delivery_time(SimTime::ZERO, A, B, 0, &mut rng).unwrap();
            if t >= SimTime::from_millis(100) {
                hiccups += 1;
            }
            n.fifo_tail.clear();
        }
        assert!((300..700).contains(&hiccups), "got {hiccups}");
    }
}
