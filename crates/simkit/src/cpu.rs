//! CPU model: a multi-core FIFO server with cgroup-style rate distortion.
//!
//! Table 1 of the paper injects two CPU fail-slow modes:
//!
//! * **CPU (slow)** — "use cgroup to limit each RSM process to utilize only
//!   5% CPU": modelled by the [`quota`](CpuModel::set_quota) multiplier,
//!   which scales the rate at which every core retires work.
//! * **CPU (contention)** — "run a contending program (assigned with 16×
//!   higher CPU share than the process)": modelled by the
//!   [`contention share`](CpuModel::set_contention), the fraction of CPU
//!   time the victim process receives while a contender is active
//!   (1/(1+16) ≈ 5.9% for the paper's setting).
//!
//! Work items are scheduled onto the earliest-free core, so the model
//! captures both service-time inflation and queueing under load.

use std::time::Duration;

use crate::time::SimTime;

/// Static CPU configuration for one node.
#[derive(Debug, Clone, Copy)]
pub struct CpuCfg {
    /// Number of cores (the paper's Standard_D4s_v3 instances have 4).
    pub cores: usize,
}

impl Default for CpuCfg {
    fn default() -> Self {
        CpuCfg { cores: 4 }
    }
}

/// Per-node CPU state: one free-at timestamp per core plus the fault knobs.
#[derive(Debug, Clone)]
pub struct CpuModel {
    core_free_at: Vec<SimTime>,
    quota: f64,
    contention_share: Option<f64>,
    /// Cumulative busy nanoseconds, for utilization reporting.
    busy_nanos: u64,
}

impl CpuModel {
    /// Creates an idle CPU with full quota and no contention.
    pub fn new(cfg: CpuCfg) -> Self {
        assert!(cfg.cores > 0, "a CPU needs at least one core");
        CpuModel {
            core_free_at: vec![SimTime::ZERO; cfg.cores],
            quota: 1.0,
            contention_share: None,
            busy_nanos: 0,
        }
    }

    /// Sets the cgroup-style quota in `(0, 1]` (1.0 = unrestricted).
    ///
    /// # Panics
    ///
    /// Panics if `quota` is not in `(0, 1]`.
    pub fn set_quota(&mut self, quota: f64) {
        assert!(quota > 0.0 && quota <= 1.0, "quota must be in (0, 1]");
        self.quota = quota;
    }

    /// Activates (`Some(share)`) or clears (`None`) CPU contention.
    ///
    /// `share` is the fraction of CPU time the victim still receives, e.g.
    /// `1.0 / 17.0` for a contender with 16× higher share.
    ///
    /// # Panics
    ///
    /// Panics if `share` is not in `(0, 1]`.
    pub fn set_contention(&mut self, share: Option<f64>) {
        if let Some(s) = share {
            assert!(s > 0.0 && s <= 1.0, "share must be in (0, 1]");
        }
        self.contention_share = share;
    }

    /// Effective rate multiplier currently applied to work.
    pub fn rate(&self) -> f64 {
        self.quota * self.contention_share.unwrap_or(1.0)
    }

    /// Cumulative busy time across all cores.
    pub fn busy(&self) -> Duration {
        Duration::from_nanos(self.busy_nanos)
    }

    /// Instant at which the earliest-free core becomes available: the
    /// start time the next scheduled work item would get. Exposed so the
    /// world can observe queueing delay (contention stalls) per request.
    pub fn next_free_at(&self) -> SimTime {
        self.core_free_at
            .iter()
            .copied()
            .min()
            .expect("at least one core")
    }

    /// Schedules `work` onto the earliest-free core and returns the finish
    /// instant. `slowdown` is an extra multiplier (memory-pressure swap
    /// penalty); the effective service time is
    /// `work / rate() * slowdown`.
    pub fn schedule(&mut self, now: SimTime, work: Duration, slowdown: f64) -> SimTime {
        let idx = self
            .core_free_at
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| **t)
            .map(|(i, _)| i)
            .expect("at least one core");
        let start = now.max(self.core_free_at[idx]);
        let effective_nanos = (work.as_nanos() as f64 / self.rate() * slowdown) as u64;
        let finish = start + Duration::from_nanos(effective_nanos);
        self.core_free_at[idx] = finish;
        self.busy_nanos += effective_nanos;
        finish
    }

    /// Utilization over `[window_start, now]`, clamped to `[0, 1]`.
    pub fn utilization(&self, window: Duration) -> f64 {
        if window.is_zero() {
            return 0.0;
        }
        let capacity = window.as_nanos() as f64 * self.core_free_at.len() as f64;
        (self.busy_nanos as f64 / capacity).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn work_finishes_after_service_time() {
        let mut cpu = CpuModel::new(CpuCfg { cores: 1 });
        let f = cpu.schedule(SimTime::ZERO, ms(10), 1.0);
        assert_eq!(f, SimTime::from_millis(10));
    }

    #[test]
    fn quota_inflates_service_time() {
        let mut cpu = CpuModel::new(CpuCfg { cores: 1 });
        cpu.set_quota(0.05);
        let f = cpu.schedule(SimTime::ZERO, ms(10), 1.0);
        assert_eq!(f, SimTime::from_millis(200));
    }

    #[test]
    fn contention_share_composes_with_quota() {
        let mut cpu = CpuModel::new(CpuCfg { cores: 1 });
        cpu.set_quota(0.5);
        cpu.set_contention(Some(0.5));
        assert!((cpu.rate() - 0.25).abs() < 1e-12);
        let f = cpu.schedule(SimTime::ZERO, ms(1), 1.0);
        assert_eq!(f, SimTime::from_millis(4));
    }

    #[test]
    fn multi_core_runs_in_parallel_then_queues() {
        let mut cpu = CpuModel::new(CpuCfg { cores: 2 });
        let a = cpu.schedule(SimTime::ZERO, ms(10), 1.0);
        let b = cpu.schedule(SimTime::ZERO, ms(10), 1.0);
        let c = cpu.schedule(SimTime::ZERO, ms(10), 1.0);
        assert_eq!(a, SimTime::from_millis(10));
        assert_eq!(b, SimTime::from_millis(10));
        // Third item waits for a free core.
        assert_eq!(c, SimTime::from_millis(20));
    }

    #[test]
    fn slowdown_multiplier_applies() {
        let mut cpu = CpuModel::new(CpuCfg { cores: 1 });
        let f = cpu.schedule(SimTime::ZERO, ms(10), 3.0);
        assert_eq!(f, SimTime::from_millis(30));
    }

    #[test]
    fn utilization_tracks_busy_time() {
        let mut cpu = CpuModel::new(CpuCfg { cores: 4 });
        for _ in 0..4 {
            cpu.schedule(SimTime::ZERO, ms(5), 1.0);
        }
        let u = cpu.utilization(ms(10));
        assert!((u - 0.5).abs() < 1e-9, "got {u}");
    }

    #[test]
    #[should_panic(expected = "quota")]
    fn zero_quota_rejected() {
        let mut cpu = CpuModel::new(CpuCfg::default());
        cpu.set_quota(0.0);
    }
}
