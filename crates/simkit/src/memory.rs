//! Memory model: usage accounting, swap-pressure slowdown and OOM.
//!
//! Table 1's **memory (contention)** fault — "use cgroup to set the maximum
//! amount of user memory for the RSM process" — is modelled by shrinking
//! the limit at runtime. Two behaviours fall out:
//!
//! * as usage approaches the limit the node pays a growing *swap penalty*
//!   (a service-time multiplier applied to its CPU and disk operations),
//!   capturing the thrashing a memory-squeezed process experiences;
//! * allocations beyond the limit fail with [`Oom`], which the caller (the
//!   RPC buffer layer) turns into a node crash — reproducing §2.2's
//!   RethinkDB observation that an unbounded leader-side buffer "can drive
//!   the leader to use an excessive amount of memory, or even run out of
//!   memory".

/// Static memory configuration for one node.
#[derive(Debug, Clone, Copy)]
pub struct MemCfg {
    /// Hard limit in bytes (the paper's VMs have 16 GiB).
    pub limit: u64,
    /// Baseline resident set of the process before any buffering.
    pub baseline: u64,
    /// Usage fraction above which the swap penalty starts.
    pub swap_threshold: f64,
    /// Service-time multiplier at 100% usage.
    pub swap_max_slowdown: f64,
}

impl Default for MemCfg {
    fn default() -> Self {
        MemCfg {
            limit: 16 * 1024 * 1024 * 1024,
            baseline: 2 * 1024 * 1024 * 1024,
            swap_threshold: 0.80,
            swap_max_slowdown: 10.0,
        }
    }
}

/// Error returned when an allocation would exceed the memory limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Oom {
    /// Bytes requested by the failing allocation.
    pub requested: u64,
    /// Bytes in use at the time of the failure.
    pub used: u64,
    /// The limit that was exceeded.
    pub limit: u64,
}

impl std::fmt::Display for Oom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "out of memory: requested {} with {}/{} bytes in use",
            self.requested, self.used, self.limit
        )
    }
}

impl std::error::Error for Oom {}

/// Per-node memory state.
#[derive(Debug, Clone)]
pub struct MemoryModel {
    cfg: MemCfg,
    limit: u64,
    used: u64,
    /// High-water mark, for reporting.
    peak: u64,
}

impl MemoryModel {
    /// Creates a model with `cfg.baseline` bytes already in use.
    pub fn new(cfg: MemCfg) -> Self {
        assert!(cfg.baseline <= cfg.limit, "baseline must fit in the limit");
        assert!(
            (0.0..1.0).contains(&cfg.swap_threshold),
            "swap threshold must be in [0, 1)"
        );
        assert!(cfg.swap_max_slowdown >= 1.0, "slowdown must be >= 1");
        MemoryModel {
            limit: cfg.limit,
            used: cfg.baseline,
            peak: cfg.baseline,
            cfg,
        }
    }

    /// Bytes currently in use.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// High-water mark of usage.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Current limit in bytes.
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Changes the limit (the cgroup memory fault). Usage already above the
    /// new limit does not immediately OOM — like a cgroup, pressure applies
    /// to *new* allocations — but the swap penalty kicks in at once.
    pub fn set_limit(&mut self, limit: u64) {
        assert!(limit > 0, "limit must be positive");
        self.limit = limit;
    }

    /// Restores the configured limit.
    pub fn reset_limit(&mut self) {
        self.limit = self.cfg.limit;
    }

    /// Attempts to account `bytes` of new usage.
    pub fn alloc(&mut self, bytes: u64) -> Result<(), Oom> {
        if self.used.saturating_add(bytes) > self.limit {
            return Err(Oom {
                requested: bytes,
                used: self.used,
                limit: self.limit,
            });
        }
        self.used += bytes;
        self.peak = self.peak.max(self.used);
        Ok(())
    }

    /// Releases `bytes` of usage (saturating: freeing more than allocated
    /// clamps to the baseline rather than underflowing).
    pub fn free(&mut self, bytes: u64) {
        self.used = self
            .used
            .saturating_sub(bytes)
            .max(self.cfg.baseline.min(self.used));
    }

    /// Usage as a fraction of the current limit (may exceed 1.0 after the
    /// limit is lowered below existing usage).
    pub fn pressure(&self) -> f64 {
        self.used as f64 / self.limit as f64
    }

    /// The swap-penalty multiplier to apply to CPU and disk service times.
    ///
    /// 1.0 below the threshold, rising linearly to `swap_max_slowdown` at
    /// 100% usage (and clamped there beyond).
    pub fn slowdown(&self) -> f64 {
        let p = self.pressure();
        let t = self.cfg.swap_threshold;
        if p <= t {
            1.0
        } else {
            let frac = ((p - t) / (1.0 - t)).min(1.0);
            1.0 + frac * (self.cfg.swap_max_slowdown - 1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> MemoryModel {
        MemoryModel::new(MemCfg {
            limit: 1000,
            baseline: 100,
            swap_threshold: 0.8,
            swap_max_slowdown: 11.0,
        })
    }

    #[test]
    fn alloc_and_free_track_usage() {
        let mut m = model();
        m.alloc(300).unwrap();
        assert_eq!(m.used(), 400);
        m.free(200);
        assert_eq!(m.used(), 200);
        assert_eq!(m.peak(), 400);
    }

    #[test]
    fn alloc_beyond_limit_is_oom() {
        let mut m = model();
        m.alloc(900).unwrap();
        let err = m.alloc(1).unwrap_err();
        assert_eq!(err.used, 1000);
        assert_eq!(err.limit, 1000);
    }

    #[test]
    fn no_slowdown_below_threshold() {
        let mut m = model();
        m.alloc(600).unwrap(); // 70% usage
        assert_eq!(m.slowdown(), 1.0);
    }

    #[test]
    fn slowdown_rises_linearly_above_threshold() {
        let mut m = model();
        m.alloc(800).unwrap(); // 90% usage: halfway between 0.8 and 1.0
        let s = m.slowdown();
        assert!((s - 6.0).abs() < 1e-9, "got {s}");
    }

    #[test]
    fn lowering_limit_raises_pressure_without_instant_oom() {
        let mut m = model();
        m.alloc(400).unwrap(); // 500 used
        m.set_limit(500);
        assert!((m.pressure() - 1.0).abs() < 1e-9);
        assert_eq!(m.slowdown(), 11.0);
        // New allocations now fail.
        assert!(m.alloc(1).is_err());
        m.reset_limit();
        assert!(m.alloc(1).is_ok());
    }

    #[test]
    fn free_never_drops_below_zero() {
        let mut m = model();
        m.free(10_000);
        assert!(m.used() <= 100);
    }
}
