//! Deterministic single-threaded async executor with virtual time.
//!
//! The executor is the heart of the simulation: it polls tasks until every
//! one of them is blocked, then jumps the virtual clock to the next timer
//! deadline. Because there is exactly one thread and the ready queue is
//! FIFO, a given seed always produces the same interleaving — the property
//! the whole benchmark harness relies on.
//!
//! The DepFast paper (§3.3) describes a runtime with "coroutines, events, a
//! scheduler, and I/O helper threads". This executor plays the scheduler
//! role; the DepFast crate layers coroutine identity and event tracing on
//! top, and the resource models in this crate stand in for the I/O helper
//! threads by completing simulated I/O after a modelled delay.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::Arc;
use std::task::{Context, Poll, Waker};
use std::time::Duration;

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::time::SimTime;
use crate::LocalBoxFuture;

/// Identifier of a spawned task, unique within one [`Sim`].
pub type TaskId = u64;

/// What a timer fires: either waking a task or running a callback.
///
/// Callbacks let the network model deliver messages without a dedicated
/// pump task; they run on the executor thread between task polls.
enum TimerAction {
    Wake(Waker),
    Call(Box<dyn FnOnce()>),
}

struct TimerEntry {
    at: SimTime,
    seq: u64,
    action: TimerAction,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The shared FIFO of tasks whose wakers have fired.
///
/// Wakers must be `Send + Sync` per the std contract, so the queue sits
/// behind a lightweight mutex even though in practice only the simulation
/// thread touches it.
#[derive(Default)]
struct WokenQueue {
    queue: Mutex<VecDeque<TaskId>>,
}

struct TaskWaker {
    id: TaskId,
    woken: Arc<WokenQueue>,
}

impl std::task::Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.woken.queue.lock().push_back(self.id);
    }
    fn wake_by_ref(self: &Arc<Self>) {
        self.woken.queue.lock().push_back(self.id);
    }
}

struct Core {
    now: SimTime,
    next_task: TaskId,
    next_timer_seq: u64,
    tasks: HashMap<TaskId, (LocalBoxFuture<()>, Waker)>,
    timers: BinaryHeap<Reverse<TimerEntry>>,
    rng: SmallRng,
    /// Total tasks ever spawned, for diagnostics.
    spawned: u64,
    /// Total task polls, for diagnostics.
    polls: u64,
}

/// A deterministic, single-threaded discrete-event simulator and executor.
///
/// `Sim` is cheap to clone (it is a reference-counted handle) and is the
/// entry point for everything time-related: spawning tasks, sleeping,
/// scheduling callbacks and drawing seeded random numbers.
///
/// # Examples
///
/// ```
/// use simkit::Sim;
/// use std::time::Duration;
///
/// let sim = Sim::new(42);
/// let s = sim.clone();
/// let out = sim.block_on(async move {
///     s.sleep(Duration::from_millis(5)).await;
///     s.now().as_nanos()
/// });
/// assert_eq!(out, 5_000_000);
/// ```
#[derive(Clone)]
pub struct Sim {
    core: Rc<RefCell<Core>>,
    woken: Arc<WokenQueue>,
}

impl Sim {
    /// Creates a new simulator whose random stream is derived from `seed`.
    pub fn new(seed: u64) -> Self {
        Sim {
            core: Rc::new(RefCell::new(Core {
                now: SimTime::ZERO,
                next_task: 0,
                next_timer_seq: 0,
                tasks: HashMap::new(),
                timers: BinaryHeap::new(),
                rng: SmallRng::seed_from_u64(seed),
                spawned: 0,
                polls: 0,
            })),
            woken: Arc::new(WokenQueue::default()),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.borrow().now
    }

    /// Number of tasks spawned so far (diagnostics).
    pub fn tasks_spawned(&self) -> u64 {
        self.core.borrow().spawned
    }

    /// Number of timers scheduled so far (diagnostics).
    pub fn timers_scheduled(&self) -> u64 {
        self.core.borrow().next_timer_seq
    }

    /// Number of task polls performed so far (diagnostics).
    pub fn polls(&self) -> u64 {
        self.core.borrow().polls
    }

    /// Draws a uniformly random `u64` from the seeded stream.
    pub fn rand_u64(&self) -> u64 {
        self.core.borrow_mut().rng.random()
    }

    /// Draws a random value in `[lo, hi)` from the seeded stream.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn rand_range(&self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "rand_range requires lo < hi");
        self.core.borrow_mut().rng.random_range(lo..hi)
    }

    /// Runs `f` with mutable access to the seeded RNG.
    pub fn with_rng<T>(&self, f: impl FnOnce(&mut SmallRng) -> T) -> T {
        f(&mut self.core.borrow_mut().rng)
    }

    /// Spawns a task and returns a handle that resolves to its output.
    ///
    /// The task starts on the ready queue and is polled during the next
    /// executor iteration; spawning never polls inline, which keeps
    /// re-entrancy away from callers holding borrows.
    pub fn spawn<T: 'static>(&self, fut: impl Future<Output = T> + 'static) -> JoinHandle<T> {
        let slot: Rc<RefCell<JoinSlot<T>>> = Rc::new(RefCell::new(JoinSlot {
            value: None,
            waker: None,
        }));
        let slot2 = slot.clone();
        let wrapped = Box::pin(async move {
            let value = fut.await;
            let mut s = slot2.borrow_mut();
            s.value = Some(value);
            if let Some(w) = s.waker.take() {
                w.wake();
            }
        });
        let id = {
            let mut core = self.core.borrow_mut();
            let id = core.next_task;
            core.next_task += 1;
            core.spawned += 1;
            // One waker per task for its whole life: lets futures
            // deduplicate registrations via `Waker::will_wake`.
            let waker = Waker::from(Arc::new(TaskWaker {
                id,
                woken: self.woken.clone(),
            }));
            core.tasks.insert(id, (wrapped, waker));
            id
        };
        self.woken.queue.lock().push_back(id);
        JoinHandle { slot }
    }

    /// Schedules `waker` to be woken at virtual instant `at`.
    pub fn schedule_wake(&self, at: SimTime, waker: Waker) {
        let mut core = self.core.borrow_mut();
        let seq = core.next_timer_seq;
        core.next_timer_seq += 1;
        core.timers.push(Reverse(TimerEntry {
            at,
            seq,
            action: TimerAction::Wake(waker),
        }));
    }

    /// Schedules `f` to run on the executor thread at virtual instant `at`.
    ///
    /// This is how the network model delivers messages: the callback runs
    /// between task polls, so it may freely borrow shared state.
    pub fn schedule_call(&self, at: SimTime, f: impl FnOnce() + 'static) {
        let mut core = self.core.borrow_mut();
        let seq = core.next_timer_seq;
        core.next_timer_seq += 1;
        core.timers.push(Reverse(TimerEntry {
            at,
            seq,
            action: TimerAction::Call(Box::new(f)),
        }));
    }

    /// Returns a future that completes after virtual duration `d`.
    pub fn sleep(&self, d: Duration) -> Sleep {
        self.sleep_until(self.now() + d)
    }

    /// Returns a future that completes at virtual instant `deadline`.
    pub fn sleep_until(&self, deadline: SimTime) -> Sleep {
        Sleep {
            sim: self.clone(),
            deadline,
            armed: false,
        }
    }

    /// Polls every runnable task, advancing time as needed, until the
    /// simulation is quiescent (no runnable tasks and no pending timers).
    pub fn run(&self) {
        loop {
            self.drain_ready();
            let fired = self.advance_to_next_timer();
            if !fired && self.woken.queue.lock().is_empty() {
                break;
            }
        }
    }

    /// Runs the simulation until `handle`'s task has completed and returns
    /// its output.
    ///
    /// # Panics
    ///
    /// Panics if the simulation goes quiescent (deadlocks) before the task
    /// finishes — in a deterministic simulation that always indicates a
    /// bug, so failing loudly beats hanging.
    pub fn run_until<T>(&self, handle: JoinHandle<T>) -> T {
        loop {
            if let Some(v) = handle.try_take() {
                return v;
            }
            self.drain_ready();
            if let Some(v) = handle.try_take() {
                return v;
            }
            let fired = self.advance_to_next_timer();
            if !fired && self.woken.queue.lock().is_empty() {
                panic!(
                    "simulation deadlocked at {} waiting for run_until task",
                    self.now()
                );
            }
        }
    }

    /// Spawns `fut` and runs the simulation until it completes.
    pub fn block_on<T: 'static>(&self, fut: impl Future<Output = T> + 'static) -> T {
        let handle = self.spawn(fut);
        self.run_until(handle)
    }

    /// Runs the simulation until virtual time reaches `deadline`, then
    /// returns (remaining tasks stay parked).
    pub fn run_until_time(&self, deadline: SimTime) {
        loop {
            self.drain_ready();
            let next = self.next_timer_at();
            match next {
                Some(at) if at <= deadline => {
                    self.advance_to_next_timer();
                }
                _ => {
                    if self.woken.queue.lock().is_empty() {
                        // Nothing left to do before the deadline.
                        self.core.borrow_mut().now = deadline.max(self.now());
                        return;
                    }
                }
            }
        }
    }

    fn next_timer_at(&self) -> Option<SimTime> {
        self.core.borrow().timers.peek().map(|Reverse(e)| e.at)
    }

    /// Polls tasks from the woken queue until it is empty.
    fn drain_ready(&self) {
        loop {
            let id = { self.woken.queue.lock().pop_front() };
            let Some(id) = id else { break };
            // Take the task out of the map so the poll can spawn/schedule
            // without re-borrowing the core.
            let Some((mut fut, waker)) = self.core.borrow_mut().tasks.remove(&id) else {
                continue; // Already finished; stale wake.
            };
            self.core.borrow_mut().polls += 1;
            let mut cx = Context::from_waker(&waker);
            match fut.as_mut().poll(&mut cx) {
                Poll::Ready(()) => {}
                Poll::Pending => {
                    self.core.borrow_mut().tasks.insert(id, (fut, waker));
                }
            }
        }
    }

    /// Advances the clock to the earliest timer and fires every timer due
    /// at that instant. Returns `false` if there were no timers.
    fn advance_to_next_timer(&self) -> bool {
        let mut actions = Vec::new();
        {
            let mut core = self.core.borrow_mut();
            let Some(Reverse(first)) = core.timers.peek() else {
                return false;
            };
            let at = first.at;
            debug_assert!(at >= core.now, "timer scheduled in the past");
            core.now = core.now.max(at);
            while let Some(Reverse(e)) = core.timers.peek() {
                if e.at > at {
                    break;
                }
                let Reverse(e) = core.timers.pop().expect("peeked entry exists");
                actions.push(e.action);
            }
        }
        for action in actions {
            match action {
                TimerAction::Wake(w) => w.wake(),
                TimerAction::Call(f) => f(),
            }
        }
        true
    }
}

struct JoinSlot<T> {
    value: Option<T>,
    waker: Option<Waker>,
}

/// Handle to a spawned task's eventual output.
///
/// Await it inside the simulation, or use [`Sim::run_until`] from outside.
pub struct JoinHandle<T> {
    slot: Rc<RefCell<JoinSlot<T>>>,
}

impl<T> JoinHandle<T> {
    /// Takes the output if the task has finished.
    pub fn try_take(&self) -> Option<T> {
        self.slot.borrow_mut().value.take()
    }

    /// Returns `true` if the task has finished (output still available).
    pub fn is_finished(&self) -> bool {
        self.slot.borrow().value.is_some()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut slot = self.slot.borrow_mut();
        if let Some(v) = slot.value.take() {
            Poll::Ready(v)
        } else {
            slot.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// Future returned by [`Sim::sleep`] / [`Sim::sleep_until`].
pub struct Sleep {
    sim: Sim,
    deadline: SimTime,
    armed: bool,
}

impl Sleep {
    /// The virtual instant this sleep completes at.
    pub fn deadline(&self) -> SimTime {
        self.deadline
    }
}

impl Future for Sleep {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.sim.now() >= self.deadline {
            Poll::Ready(())
        } else {
            // Arm the wake-up once; re-polls (spurious wakes) must not
            // multiply timers.
            if !self.armed {
                self.armed = true;
                self.sim.schedule_wake(self.deadline, cx.waker().clone());
            }
            Poll::Pending
        }
    }
}

/// Cooperatively yields once, letting other ready tasks run first.
pub fn yield_now() -> YieldNow {
    YieldNow { polled: false }
}

/// Future returned by [`yield_now`].
pub struct YieldNow {
    polled: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.polled {
            Poll::Ready(())
        } else {
            self.polled = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn block_on_returns_value() {
        let sim = Sim::new(1);
        assert_eq!(sim.block_on(async { 7 }), 7);
    }

    #[test]
    fn sleep_advances_virtual_time_only() {
        let sim = Sim::new(1);
        let s = sim.clone();
        let wall = std::time::Instant::now();
        sim.block_on(async move {
            s.sleep(Duration::from_secs(3600)).await;
        });
        assert_eq!(sim.now(), SimTime::from_secs(3600));
        assert!(wall.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn tasks_interleave_deterministically() {
        let run = |seed| {
            let sim = Sim::new(seed);
            let order = Rc::new(RefCell::new(Vec::new()));
            for i in 0..5u32 {
                let s = sim.clone();
                let o = order.clone();
                sim.spawn(async move {
                    s.sleep(Duration::from_millis((5 - i) as u64)).await;
                    o.borrow_mut().push(i);
                });
            }
            sim.run();
            let out = order.borrow().clone();
            out
        };
        let a = run(9);
        let b = run(9);
        assert_eq!(a, b);
        assert_eq!(a, vec![4, 3, 2, 1, 0]);
    }

    #[test]
    fn timers_at_same_instant_fire_in_schedule_order() {
        let sim = Sim::new(1);
        let hits = Rc::new(RefCell::new(Vec::new()));
        for i in 0..3 {
            let h = hits.clone();
            sim.schedule_call(SimTime::from_millis(1), move || h.borrow_mut().push(i));
        }
        sim.run();
        assert_eq!(*hits.borrow(), vec![0, 1, 2]);
    }

    #[test]
    fn join_handle_awaitable_from_task() {
        let sim = Sim::new(1);
        let s = sim.clone();
        let out = sim.block_on(async move {
            let inner = s.spawn(async { 41 });
            inner.await + 1
        });
        assert_eq!(out, 42);
    }

    #[test]
    #[should_panic(expected = "deadlocked")]
    fn run_until_detects_deadlock() {
        let sim = Sim::new(1);
        sim.block_on(std::future::pending::<()>());
    }

    #[test]
    fn run_until_time_parks_remaining_work() {
        let sim = Sim::new(1);
        let fired = Rc::new(Cell::new(false));
        let f = fired.clone();
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(Duration::from_secs(10)).await;
            f.set(true);
        });
        sim.run_until_time(SimTime::from_secs(5));
        assert!(!fired.get());
        assert_eq!(sim.now(), SimTime::from_secs(5));
        sim.run_until_time(SimTime::from_secs(20));
        assert!(fired.get());
    }

    #[test]
    fn rng_is_deterministic_per_seed() {
        let a: Vec<u64> = {
            let sim = Sim::new(123);
            (0..8).map(|_| sim.rand_u64()).collect()
        };
        let b: Vec<u64> = {
            let sim = Sim::new(123);
            (0..8).map(|_| sim.rand_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let sim = Sim::new(124);
            (0..8).map(|_| sim.rand_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn yield_now_lets_other_tasks_run() {
        let sim = Sim::new(1);
        let log = Rc::new(RefCell::new(Vec::new()));
        let l1 = log.clone();
        sim.spawn(async move {
            l1.borrow_mut().push("a1");
            yield_now().await;
            l1.borrow_mut().push("a2");
        });
        let l2 = log.clone();
        sim.spawn(async move {
            l2.borrow_mut().push("b1");
        });
        sim.run();
        assert_eq!(*log.borrow(), vec!["a1", "b1", "a2"]);
    }
}
