//! Slowness propagation graphs (SPGs).
//!
//! §3.3: *"Based on linking the coroutines, DepFast can generate slowness
//! propagation graphs (SPGs) at runtime. [...] Each edge is directed — the
//! direction suggests the waiting-for relationship. Each edge is colored: a
//! wait on a basic event (e.g., an RpcEvent) contributes to a red edge; a
//! wait on a QuorumEvent contributes to a green edge."*
//!
//! [`build`] reconstructs, from a full trace, every *wait group*: node `A`
//! waited for `k` of the events targeting nodes `{B₁…Bₙ}`. Singular remote
//! waits (`k = n = 1` on an RPC) are the red edges; quorum waits are green
//! with a `k/n` label — exactly the Figure 2 visualization, which
//! [`Spg::to_dot`] emits in Graphviz form.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use simkit::{NodeId, SimTime};

use crate::event::{EventId, EventKind};
use crate::runtime::CoroId;
use crate::trace::TraceRecord;

/// Color of an SPG edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EdgeKind {
    /// Red: a wait whose completion hinges on one specific remote node.
    Singular,
    /// Green: a wait that tolerates stragglers (k of n).
    Quorum,
}

/// One reconstructed waiting point: `waiter` needed `k` of the events
/// targeting `targets`.
#[derive(Debug, Clone)]
pub struct WaitGroup {
    /// Node that waited.
    pub waiter: NodeId,
    /// Coroutine that waited, if the wait happened inside one.
    pub coro: Option<CoroId>,
    /// Label of the waiting coroutine (`"?"` if unknown).
    pub coro_label: &'static str,
    /// Label of the waited-on event.
    pub event_label: &'static str,
    /// Remote nodes the wait depended on (one entry per dependence; a
    /// node appearing twice counts twice toward `k`).
    pub targets: Vec<NodeId>,
    /// Successes required *among the remote targets* (local children —
    /// e.g. the leader's own WAL write inside a replication quorum — have
    /// already been discounted).
    pub k: usize,
    /// Edge color this group contributes.
    pub kind: EdgeKind,
    /// Display label numerator (the quorum's full threshold).
    pub label_k: usize,
    /// Display label denominator (the quorum's full child count).
    pub label_n: usize,
    /// When the wait began.
    pub t: SimTime,
}

/// An aggregated directed edge of the SPG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpgEdge {
    /// Waiting node.
    pub from: NodeId,
    /// Waited-on node.
    pub to: NodeId,
    /// Color.
    pub kind: EdgeKind,
    /// Quorum label, e.g. `"2/3"` or `"1/1"`.
    pub label: String,
    /// Number of waits aggregated into this edge.
    pub count: u64,
}

/// A slowness propagation graph reconstructed from a trace.
#[derive(Debug, Clone, Default)]
pub struct Spg {
    /// Every reconstructed waiting point (used by `verify`).
    pub groups: Vec<WaitGroup>,
}

struct EventInfo {
    kind: EventKind,
    label: &'static str,
    children: Vec<EventId>,
    quorum_meta: Option<(usize, usize)>,
}

/// Builds an SPG from full trace records.
///
/// Requires the tracer to have been in full-recording mode
/// ([`crate::Tracer::set_record_full`]) during the run.
pub fn build(records: &[TraceRecord]) -> Spg {
    let mut events: HashMap<EventId, EventInfo> = HashMap::new();
    let mut coro_labels: HashMap<CoroId, &'static str> = HashMap::new();

    for rec in records {
        match rec {
            TraceRecord::EventCreated {
                event, kind, label, ..
            } => {
                events.insert(
                    *event,
                    EventInfo {
                        kind: *kind,
                        label,
                        children: Vec::new(),
                        quorum_meta: None,
                    },
                );
            }
            TraceRecord::ChildAdded {
                parent,
                child,
                parent_meta,
                ..
            } => {
                if let Some(info) = events.get_mut(parent) {
                    info.children.push(*child);
                    if parent_meta.is_some() {
                        info.quorum_meta = *parent_meta;
                    }
                }
            }
            TraceRecord::CoroutineStart { coro, label, .. } => {
                coro_labels.insert(*coro, label);
            }
            _ => {}
        }
    }

    let mut groups = Vec::new();
    for rec in records {
        let TraceRecord::WaitBegin {
            t,
            node,
            coro,
            coro_label,
            event,
            quorum,
        } = rec
        else {
            continue;
        };
        let coro_label = if *coro_label != "?" {
            coro_label
        } else {
            coro.and_then(|c| coro_labels.get(&c).copied())
                .unwrap_or("?")
        };
        collect_groups(
            &events,
            *event,
            *quorum,
            *node,
            *coro,
            coro_label,
            *t,
            &mut groups,
        );
    }
    Spg { groups }
}

/// Every remote (RPC) leaf target under `event`, in child order.
fn leaf_targets(events: &HashMap<EventId, EventInfo>, event: EventId, out: &mut Vec<NodeId>) {
    let Some(info) = events.get(&event) else {
        return;
    };
    match info.kind {
        EventKind::Rpc { target } => out.push(target),
        EventKind::Quorum | EventKind::And | EventKind::Or => {
            for c in &info.children {
                leaf_targets(events, *c, out);
            }
        }
        _ => {}
    }
}

/// Splits a compound event's children into remote leaf targets and the
/// count of purely-local children.
fn split_children(
    events: &HashMap<EventId, EventInfo>,
    children: &[EventId],
) -> (Vec<NodeId>, usize) {
    let mut targets = Vec::new();
    let mut local = 0;
    for c in children {
        let mut t = Vec::new();
        leaf_targets(events, *c, &mut t);
        if t.is_empty() {
            local += 1;
        } else {
            targets.extend(t);
        }
    }
    (targets, local)
}

#[allow(clippy::too_many_arguments)]
fn collect_groups(
    events: &HashMap<EventId, EventInfo>,
    event: EventId,
    wait_quorum: Option<(usize, usize)>,
    waiter: NodeId,
    coro: Option<CoroId>,
    coro_label: &'static str,
    t: SimTime,
    out: &mut Vec<WaitGroup>,
) {
    let Some(info) = events.get(&event) else {
        return;
    };
    // A requirement over remote targets. If every remote dependence is on
    // one single node, the wait is semantically singular on that node (the
    // paper's red edge) no matter how it was composed.
    let push = |out: &mut Vec<WaitGroup>,
                targets: Vec<NodeId>,
                k: usize,
                label_k: usize,
                label_n: usize,
                kind: EdgeKind| {
        if targets.is_empty() || k == 0 {
            return; // Purely local, or locally satisfiable.
        }
        let distinct: std::collections::BTreeSet<NodeId> = targets.iter().copied().collect();
        if distinct.len() == 1 {
            out.push(WaitGroup {
                waiter,
                coro,
                coro_label,
                event_label: info.label,
                targets: vec![*distinct.iter().next().expect("non-empty")],
                k: 1,
                kind: EdgeKind::Singular,
                label_k: 1,
                label_n: 1,
                t,
            });
        } else {
            out.push(WaitGroup {
                waiter,
                coro,
                coro_label,
                event_label: info.label,
                targets,
                k,
                kind,
                label_k,
                label_n,
                t,
            });
        }
    };
    match info.kind {
        EventKind::Rpc { target } => {
            push(out, vec![target], 1, 1, 1, EdgeKind::Singular);
        }
        EventKind::Quorum => {
            let n_children = info.children.len();
            let (k, _n) = wait_quorum
                .or(info.quorum_meta)
                .unwrap_or((n_children / 2 + 1, n_children));
            // An all-mode quorum over compound children — a quorum of
            // quorums — requires every child individually, so each nested
            // quorum keeps its own threshold (recovered from the
            // `parent_meta` snapshots in `ChildAdded` records). Partial
            // (k < n) outer thresholds over compound children stay
            // flattened below: the flat WaitGroup form cannot express
            // "k of these sub-requirements".
            let compound: Vec<EventId> = info
                .children
                .iter()
                .copied()
                .filter(|c| {
                    matches!(
                        events.get(c).map(|i| i.kind),
                        Some(EventKind::Quorum | EventKind::And | EventKind::Or)
                    )
                })
                .collect();
            if k == n_children && !compound.is_empty() {
                for c in &compound {
                    let meta = events.get(c).and_then(|i| i.quorum_meta);
                    collect_groups(events, *c, meta, waiter, coro, coro_label, t, out);
                }
                let simple: Vec<EventId> = info
                    .children
                    .iter()
                    .copied()
                    .filter(|c| !compound.contains(c))
                    .collect();
                let (targets, local) = split_children(events, &simple);
                let k_remote = simple.len().saturating_sub(local);
                push(out, targets, k_remote, k, n_children, EdgeKind::Quorum);
                return;
            }
            let (targets, local) = split_children(events, &info.children);
            // Local children (own disk write, self vote) are assumed to
            // succeed; the remote requirement shrinks accordingly.
            let k_remote = k.saturating_sub(local);
            push(out, targets, k_remote, k, n_children, EdgeKind::Quorum);
        }
        EventKind::And => {
            // Each conjunct is its own requirement: recurse per child so a
            // nested quorum keeps its own threshold.
            for c in &info.children {
                let meta = events.get(c).and_then(|i| i.quorum_meta);
                collect_groups(events, *c, meta, waiter, coro, coro_label, t, out);
            }
        }
        EventKind::Or => {
            // Any branch suffices. A fully-local branch means the wait can
            // resolve without any remote node; otherwise it needs one of
            // the union of leaf dependences (a conservative green edge).
            let (targets, local) = split_children(events, &info.children);
            let k_remote = if local > 0 { 0 } else { 1 };
            push(
                out,
                targets,
                k_remote,
                1,
                info.children.len(),
                EdgeKind::Quorum,
            );
        }
        // Local waits (notify, value, timer, io) do not produce SPG edges.
        _ => {}
    }
}

impl Spg {
    /// Aggregated directed edges, ordered by (from, to, kind, label).
    pub fn edges(&self) -> Vec<SpgEdge> {
        let mut agg: BTreeMap<(u32, u32, EdgeKind, String), u64> = BTreeMap::new();
        for g in &self.groups {
            let label = format!("{}/{}", g.label_k, g.label_n);
            for t in &g.targets {
                *agg.entry((g.waiter.0, t.0, g.kind, label.clone()))
                    .or_insert(0) += 1;
            }
        }
        agg.into_iter()
            .map(|((from, to, kind, label), count)| SpgEdge {
                from: NodeId(from),
                to: NodeId(to),
                kind,
                label,
                count,
            })
            .collect()
    }

    /// All nodes appearing in the graph.
    pub fn nodes(&self) -> BTreeSet<NodeId> {
        let mut s = BTreeSet::new();
        for g in &self.groups {
            s.insert(g.waiter);
            s.extend(g.targets.iter().copied());
        }
        s
    }

    /// Renders the SPG as Graphviz DOT, Figure 2 style: red edges for
    /// singular waits, green for quorum waits, labels like `2/3`.
    ///
    /// `name` maps node ids to display names (e.g. `s1`..`s9`, `c1`..`c3`).
    pub fn to_dot(&self, name: impl Fn(NodeId) -> String) -> String {
        let mut out = String::from("digraph spg {\n  rankdir=LR;\n  node [shape=circle];\n");
        for n in self.nodes() {
            out.push_str(&format!("  \"{}\";\n", name(n)));
        }
        for e in self.edges() {
            let color = match e.kind {
                EdgeKind::Singular => "red",
                EdgeKind::Quorum => "green",
            };
            out.push_str(&format!(
                "  \"{}\" -> \"{}\" [color={}, label=\"{}\", penwidth={}];\n",
                name(e.from),
                name(e.to),
                color,
                e.label,
                1.0 + (e.count as f64).log10().max(0.0),
            ));
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventHandle, Notify, QuorumEvent, Watchable};
    use crate::runtime::{Coroutine, Runtime};
    use crate::trace::Tracer;
    use simkit::Sim;

    fn traced_rt(node: u32) -> (Sim, Runtime) {
        let sim = Sim::new(1);
        let tracer = Tracer::new();
        tracer.set_record_full(true);
        let rt = Runtime::with_tracer(sim.clone(), NodeId(node), tracer);
        (sim, rt)
    }

    fn rpc_like(rt: &Runtime, target: u32) -> EventHandle {
        EventHandle::new(
            rt,
            EventKind::Rpc {
                target: NodeId(target),
            },
            "append_entries",
        )
    }

    #[test]
    fn singular_rpc_wait_is_red_edge() {
        let (sim, rt) = traced_rt(0);
        let e = rpc_like(&rt, 2);
        let rt2 = rt.clone();
        Coroutine::create(&rt, "replicate", async move {
            let e2 = e.clone();
            rt2.schedule_call(rt2.now() + std::time::Duration::from_millis(1), move || {
                e2.fire(crate::event::Signal::Ok)
            });
            e.wait().await;
        });
        sim.run();
        let spg = build(&rt.tracer().records());
        let edges = spg.edges();
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].from, NodeId(0));
        assert_eq!(edges[0].to, NodeId(2));
        assert_eq!(edges[0].kind, EdgeKind::Singular);
        assert_eq!(edges[0].label, "1/1");
    }

    #[test]
    fn quorum_wait_is_green_edges_with_k_of_n() {
        let (sim, rt) = traced_rt(0);
        let q = QuorumEvent::majority(&rt);
        for t in 1..=3u32 {
            let e = rpc_like(&rt, t);
            q.add(&e);
            e.fire(crate::event::Signal::Ok);
        }
        let q2 = q.clone();
        Coroutine::create(&rt, "replicate", async move {
            q2.handle().wait().await;
        });
        sim.run();
        let spg = build(&rt.tracer().records());
        let edges = spg.edges();
        assert_eq!(edges.len(), 3);
        for e in &edges {
            assert_eq!(e.kind, EdgeKind::Quorum);
            assert_eq!(e.label, "2/3");
        }
    }

    #[test]
    fn local_waits_produce_no_edges() {
        let (sim, rt) = traced_rt(0);
        let n = Notify::new(&rt);
        n.set(crate::event::Signal::Ok);
        let h = n.handle().clone();
        Coroutine::create(&rt, "local", async move {
            h.wait().await;
        });
        sim.run();
        let spg = build(&rt.tracer().records());
        assert!(spg.edges().is_empty());
    }

    #[test]
    fn dot_output_contains_colors_and_labels() {
        let (sim, rt) = traced_rt(0);
        let q = QuorumEvent::majority(&rt);
        for t in 1..=3u32 {
            let e = rpc_like(&rt, t);
            q.add(&e);
            e.fire(crate::event::Signal::Ok);
        }
        let q2 = q.clone();
        Coroutine::create(&rt, "replicate", async move {
            q2.handle().wait().await;
        });
        sim.run();
        let spg = build(&rt.tracer().records());
        let dot = spg.to_dot(|n| format!("s{}", n.0 + 1));
        assert!(dot.contains("color=green"));
        assert!(dot.contains("label=\"2/3\""));
        assert!(dot.contains("\"s1\" -> \"s2\""));
    }

    #[test]
    fn nested_and_of_quorums_keeps_child_thresholds() {
        let (sim, rt) = traced_rt(0);
        let and = crate::event::AndEvent::new(&rt);
        for shard in 0..2u32 {
            let q = QuorumEvent::majority(&rt);
            for i in 0..3u32 {
                let e = rpc_like(&rt, 1 + shard * 3 + i);
                q.add(&e);
                e.fire(crate::event::Signal::Ok);
            }
            and.add(&q);
        }
        let h = and.handle().clone();
        Coroutine::create(&rt, "txn", async move {
            h.wait().await;
        });
        sim.run();
        let spg = build(&rt.tracer().records());
        // Two quorum groups of 3 targets each, k=2.
        let quorum_groups: Vec<_> = spg
            .groups
            .iter()
            .filter(|g| g.kind == EdgeKind::Quorum)
            .collect();
        assert_eq!(quorum_groups.len(), 2);
        for g in quorum_groups {
            assert_eq!(g.k, 2);
            assert_eq!(g.targets.len(), 3);
        }
    }
}
