//! Runtime verification of fail-slow fault tolerance.
//!
//! §3.1 gives the definition this module checks: *"we define code that
//! only uses QuorumEvent and has no other waiting points as fail-slow
//! fault-tolerant code."* [`check_fail_slow_tolerance`] scans a trace for
//! singular remote waits inside the coroutines the caller designates as
//! critical, and reports each one as a [`Violation`] — the analysis that
//! took the paper's authors "two person-years" to do by hand with printf
//! timestamps (§2.3).
//!
//! [`propagation_impact`] answers the complementary what-if question on
//! the same data: given that some nodes fail slow, which other nodes'
//! waits would stall? It runs a fixed point over the reconstructed wait
//! groups: a singular wait stalls if its one target is impacted; a k-of-n
//! quorum wait stalls only when fewer than `k` healthy targets remain.

use std::collections::{BTreeMap, BTreeSet};

use simkit::NodeId;

use crate::spg::{EdgeKind, Spg};

/// A singular remote wait found on a critical code path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Node whose code contains the wait.
    pub waiter: NodeId,
    /// Remote node the wait depends on.
    pub target: NodeId,
    /// Label of the offending coroutine.
    pub coro_label: &'static str,
    /// Label of the waited-on event.
    pub event_label: &'static str,
    /// How many times this wait occurred in the trace.
    pub count: u64,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "coroutine `{}` on {} waits singularly on `{}` from {} ({} times)",
            self.coro_label, self.waiter, self.event_label, self.target, self.count
        )
    }
}

/// Scans an SPG for singular remote waits in critical coroutines.
///
/// `is_critical` selects coroutines by label (e.g. everything starting
/// with `"raft"`). Returns one aggregated [`Violation`] per distinct
/// (waiter, target, coroutine label, event label), ordered
/// deterministically.
pub fn check_fail_slow_tolerance(spg: &Spg, is_critical: impl Fn(&str) -> bool) -> Vec<Violation> {
    let mut agg: BTreeMap<(u32, u32, &'static str, &'static str), u64> = BTreeMap::new();
    for g in &spg.groups {
        if g.kind != EdgeKind::Singular || !is_critical(g.coro_label) {
            continue;
        }
        for t in &g.targets {
            if *t == g.waiter {
                continue; // A wait on oneself is a local wait.
            }
            *agg.entry((g.waiter.0, t.0, g.coro_label, g.event_label))
                .or_insert(0) += 1;
        }
    }
    agg.into_iter()
        .map(|((w, t, cl, el), count)| Violation {
            waiter: NodeId(w),
            target: NodeId(t),
            coro_label: cl,
            event_label: el,
            count,
        })
        .collect()
}

/// Computes the transitive impact set of a set of slow nodes.
///
/// Returns every node (including the seeds) whose waits would stall if the
/// seed nodes were arbitrarily slow, according to the wait groups observed
/// in the trace.
pub fn propagation_impact(spg: &Spg, slow: &BTreeSet<NodeId>) -> BTreeSet<NodeId> {
    let mut impacted = slow.clone();
    loop {
        let mut changed = false;
        for g in &spg.groups {
            if impacted.contains(&g.waiter) {
                continue;
            }
            let slow_targets = g.targets.iter().filter(|t| impacted.contains(t)).count();
            let healthy = g.targets.len() - slow_targets;
            if healthy < g.k {
                impacted.insert(g.waiter);
                changed = true;
            }
        }
        if !changed {
            return impacted;
        }
    }
}

/// Probabilistic slowness propagation — the paper's planned extension
/// (§3.3: *"we plan to extend the analysis ... by integrating the
/// probability models that consider transient fail-slow events"*).
///
/// `base` gives each node's marginal probability of being (transiently)
/// fail-slow. The analysis iterates the propagation fixed point in
/// probability space: a wait group stalls when more than `n − k` of its
/// targets are impacted (computed exactly with a Poisson-binomial DP,
/// treating targets as independent), and a node is impacted if it is slow
/// itself or any of its wait groups stalls. Returns each node's impact
/// probability.
///
/// Independence across targets is an approximation (shared-fate faults
/// correlate); the result is an analytic estimate, not a bound.
pub fn propagation_probability(spg: &Spg, base: &BTreeMap<NodeId, f64>) -> BTreeMap<NodeId, f64> {
    // Collect every node and seed with its base probability.
    let mut prob: BTreeMap<NodeId, f64> = BTreeMap::new();
    for g in &spg.groups {
        prob.entry(g.waiter).or_insert(0.0);
        for t in &g.targets {
            prob.entry(*t).or_insert(0.0);
        }
    }
    for (n, p) in base {
        prob.insert(*n, p.clamp(0.0, 1.0));
    }
    // Deduplicate groups per waiter so repeated identical waits are not
    // treated as independent stall opportunities.
    let mut by_waiter: BTreeMap<NodeId, Vec<(Vec<NodeId>, usize)>> = BTreeMap::new();
    for g in &spg.groups {
        let mut targets = g.targets.clone();
        targets.sort_unstable();
        let entry = by_waiter.entry(g.waiter).or_default();
        if !entry.iter().any(|(t, k)| *t == targets && *k == g.k) {
            entry.push((targets, g.k));
        }
    }
    // Fixed point: impact probabilities only increase, bounded by 1.
    for _ in 0..32 {
        let mut next = prob.clone();
        let mut changed = false;
        for (waiter, groups) in &by_waiter {
            let own = base.get(waiter).copied().unwrap_or(0.0);
            let mut p_ok = 1.0 - own;
            for (targets, k) in groups {
                let p_stall = stall_probability(targets, *k, &prob);
                p_ok *= 1.0 - p_stall;
            }
            let p_impacted = 1.0 - p_ok;
            let cur = prob.get(waiter).copied().unwrap_or(0.0);
            if p_impacted > cur + 1e-12 {
                next.insert(*waiter, p_impacted);
                changed = true;
            }
        }
        prob = next;
        if !changed {
            break;
        }
    }
    prob
}

/// P(fewer than `k` of `targets` are healthy), Poisson-binomial DP.
fn stall_probability(targets: &[NodeId], k: usize, prob: &BTreeMap<NodeId, f64>) -> f64 {
    let n = targets.len();
    if k == 0 || n == 0 {
        return 0.0;
    }
    // dp[h] = probability exactly h targets healthy so far.
    let mut dp = vec![0.0f64; n + 1];
    dp[0] = 1.0;
    for (i, t) in targets.iter().enumerate() {
        let p_healthy = 1.0 - prob.get(t).copied().unwrap_or(0.0);
        for h in (0..=i).rev() {
            let v = dp[h];
            dp[h + 1] += v * p_healthy;
            dp[h] = v * (1.0 - p_healthy);
        }
    }
    dp[..k.min(n + 1)].iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spg::WaitGroup;
    use simkit::SimTime;

    fn group(waiter: u32, targets: &[u32], k: usize, kind: EdgeKind) -> WaitGroup {
        WaitGroup {
            waiter: NodeId(waiter),
            coro: None,
            coro_label: "raft:replicate",
            event_label: "append_entries",
            targets: targets.iter().map(|t| NodeId(*t)).collect(),
            k,
            kind,
            label_k: k,
            label_n: targets.len(),
            t: SimTime::ZERO,
        }
    }

    fn spg(groups: Vec<WaitGroup>) -> Spg {
        Spg { groups }
    }

    #[test]
    fn singular_remote_wait_is_flagged() {
        let s = spg(vec![group(0, &[1], 1, EdgeKind::Singular)]);
        let v = check_fail_slow_tolerance(&s, |_| true);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].waiter, NodeId(0));
        assert_eq!(v[0].target, NodeId(1));
    }

    #[test]
    fn quorum_wait_is_not_flagged() {
        let s = spg(vec![group(0, &[1, 2, 3], 2, EdgeKind::Quorum)]);
        assert!(check_fail_slow_tolerance(&s, |_| true).is_empty());
    }

    #[test]
    fn filter_scopes_the_check() {
        let s = spg(vec![group(0, &[1], 1, EdgeKind::Singular)]);
        assert!(check_fail_slow_tolerance(&s, |l| l.starts_with("client")).is_empty());
        assert_eq!(
            check_fail_slow_tolerance(&s, |l| l.starts_with("raft")).len(),
            1
        );
    }

    #[test]
    fn repeated_waits_aggregate() {
        let s = spg(vec![
            group(0, &[1], 1, EdgeKind::Singular),
            group(0, &[1], 1, EdgeKind::Singular),
        ]);
        let v = check_fail_slow_tolerance(&s, |_| true);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].count, 2);
    }

    #[test]
    fn self_wait_is_not_remote() {
        let s = spg(vec![group(0, &[0], 1, EdgeKind::Singular)]);
        assert!(check_fail_slow_tolerance(&s, |_| true).is_empty());
    }

    #[test]
    fn propagation_through_singular_chain() {
        // c -> leader -> follower (all singular): slow follower impacts all.
        let s = spg(vec![
            group(9, &[0], 1, EdgeKind::Singular),
            group(0, &[1], 1, EdgeKind::Singular),
        ]);
        let slow: BTreeSet<NodeId> = [NodeId(1)].into();
        let impacted = propagation_impact(&s, &slow);
        assert_eq!(impacted, [NodeId(0), NodeId(1), NodeId(9)].into());
    }

    #[test]
    fn quorum_absorbs_minority_slowness() {
        // Leader waits 2-of-3; one slow follower does not impact it.
        let s = spg(vec![group(0, &[1, 2, 3], 2, EdgeKind::Quorum)]);
        let slow: BTreeSet<NodeId> = [NodeId(1)].into();
        let impacted = propagation_impact(&s, &slow);
        assert_eq!(impacted, [NodeId(1)].into());
    }

    #[test]
    fn quorum_breaks_under_majority_slowness() {
        let s = spg(vec![group(0, &[1, 2, 3], 2, EdgeKind::Quorum)]);
        let slow: BTreeSet<NodeId> = [NodeId(1), NodeId(2)].into();
        let impacted = propagation_impact(&s, &slow);
        assert!(impacted.contains(&NodeId(0)));
    }

    #[test]
    fn probability_singular_wait_inherits_target_probability() {
        let s = spg(vec![group(0, &[1], 1, EdgeKind::Singular)]);
        let base: BTreeMap<NodeId, f64> = [(NodeId(1), 0.3)].into();
        let p = propagation_probability(&s, &base);
        assert!((p[&NodeId(0)] - 0.3).abs() < 1e-9, "got {p:?}");
    }

    #[test]
    fn probability_quorum_dampens_transient_slowness() {
        // 2-of-3 quorum over targets each slow with p=0.1 independently:
        // stall needs >= 2 slow: 3*0.1^2*0.9 + 0.1^3 = 0.028.
        let s = spg(vec![group(0, &[1, 2, 3], 2, EdgeKind::Quorum)]);
        let base: BTreeMap<NodeId, f64> =
            [(NodeId(1), 0.1), (NodeId(2), 0.1), (NodeId(3), 0.1)].into();
        let p = propagation_probability(&s, &base);
        assert!((p[&NodeId(0)] - 0.028).abs() < 1e-9, "got {p:?}");
    }

    #[test]
    fn probability_chains_compose() {
        // client -> leader (singular), leader -> 2-of-3 quorum.
        let s = spg(vec![
            group(9, &[0], 1, EdgeKind::Singular),
            group(0, &[1, 2, 3], 2, EdgeKind::Quorum),
        ]);
        let base: BTreeMap<NodeId, f64> =
            [(NodeId(1), 0.1), (NodeId(2), 0.1), (NodeId(3), 0.1)].into();
        let p = propagation_probability(&s, &base);
        // The client inherits the leader's (quorum-dampened) probability.
        assert!((p[&NodeId(9)] - 0.028).abs() < 1e-9, "got {p:?}");
    }

    #[test]
    fn probability_own_slowness_dominates() {
        let s = spg(vec![group(0, &[1, 2, 3], 2, EdgeKind::Quorum)]);
        let base: BTreeMap<NodeId, f64> = [(NodeId(0), 1.0)].into();
        let p = propagation_probability(&s, &base);
        assert!((p[&NodeId(0)] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn probability_duplicate_groups_not_double_counted() {
        let s = spg(vec![
            group(0, &[1], 1, EdgeKind::Singular),
            group(0, &[1], 1, EdgeKind::Singular),
        ]);
        let base: BTreeMap<NodeId, f64> = [(NodeId(1), 0.5)].into();
        let p = propagation_probability(&s, &base);
        assert!((p[&NodeId(0)] - 0.5).abs() < 1e-9, "got {p:?}");
    }

    #[test]
    fn propagation_with_nested_quorums_from_a_real_trace() {
        // Quorum-of-quorums, reconstructed from trace records (not
        // hand-built groups): a coordinator on node 0 waits for *all* of
        // two per-shard majorities, each 2-of-3 over RPCs to that shard's
        // replicas. The inner thresholds are recovered from the
        // `parent_meta` snapshots in `ChildAdded` records.
        use crate::event::{EventHandle, EventKind, QuorumEvent, QuorumMode};
        use crate::runtime::{Coroutine, Runtime};
        use crate::spg;
        use simkit::Sim;
        use std::time::Duration;

        let sim = Sim::new(1);
        let rt = Runtime::new_sim(sim.clone(), NodeId(0));
        rt.tracer().set_record_full(true);
        let outer = QuorumEvent::labeled(&rt, QuorumMode::All, "xshard");
        for shard in 0..2u32 {
            let inner = QuorumEvent::labeled(&rt, QuorumMode::Majority, "shard");
            for replica in 1..=3u32 {
                let target = NodeId(shard * 3 + replica);
                let ev =
                    EventHandle::with_sampling(&rt, EventKind::Rpc { target }, "prepare", false);
                inner.add(&ev);
            }
            outer.add(&inner);
        }
        let o = outer.clone();
        Coroutine::create(&rt, "txn:coordinator", async move {
            o.wait_timeout(Duration::from_millis(5)).await;
        });
        sim.run();

        let records = rt.tracer().take_records();
        let s = spg::build(&records);
        // One 2-of-3 quorum group per shard; no singular edges.
        let quorums: Vec<_> = s
            .groups
            .iter()
            .filter(|g| g.kind == EdgeKind::Quorum && g.targets.len() == 3)
            .collect();
        assert_eq!(quorums.len(), 2, "groups: {:?}", s.groups);
        assert!(quorums.iter().all(|g| g.k == 2));
        assert!(check_fail_slow_tolerance(&s, |_| true).is_empty());

        // One slow replica per shard: both inner majorities absorb it.
        let slow: BTreeSet<NodeId> = [NodeId(1), NodeId(4)].into();
        assert_eq!(propagation_impact(&s, &slow), slow.clone());
        // A broken majority in *either* shard stalls the coordinator,
        // even though 4 of the 6 replicas overall are healthy.
        let slow: BTreeSet<NodeId> = [NodeId(1), NodeId(2)].into();
        let impacted = propagation_impact(&s, &slow);
        assert!(impacted.contains(&NodeId(0)), "impacted: {impacted:?}");
    }

    #[test]
    fn client_impacted_via_slow_leader_despite_quorum_cluster() {
        // Figure 2's observation: clients wait 1/1 on leaders. A slow
        // leader impacts its clients even though the quorum edges within
        // the group stay green.
        let s = spg(vec![
            group(9, &[0], 1, EdgeKind::Singular),     // client -> leader
            group(0, &[1, 2, 3], 2, EdgeKind::Quorum), // leader -> followers
        ]);
        let slow: BTreeSet<NodeId> = [NodeId(0)].into();
        let impacted = propagation_impact(&s, &slow);
        assert_eq!(impacted, [NodeId(0), NodeId(9)].into());
    }
}
