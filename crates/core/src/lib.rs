//! **DepFast** — the Dependably Fast Library.
//!
//! A Rust reproduction of the programming framework from *"Fail-slow fault
//! tolerance needs programming support"* (HotOS '21). DepFast's thesis:
//! distributed systems fail to tolerate fail-slow faults not because their
//! protocols are wrong but because their *implementations* wait in the
//! wrong places. The library therefore makes waiting points first-class:
//!
//! * [`Coroutine`]s give logic code a synchronous shape
//!   (no shredded callbacks) on a lightweight cooperative scheduler;
//! * [`event`]s wrap every waiting point. Basic events cover network/disk
//!   completions and simple conditions; compound events —
//!   [`QuorumEvent`], [`AndEvent`],
//!   [`OrEvent`] — compose them, and can be nested to
//!   express conditions like "fast-quorum ok, or minority-plus-one reject";
//! * waiting on a [`QuorumEvent`] instead of individual
//!   completions is what makes code *fail-slow fault-tolerant by
//!   construction*: no single slow component sits on the critical path;
//! * every event doubles as a trace point. The [`trace`] module records
//!   waiting-for relationships, [`spg`] builds slowness propagation graphs
//!   from them, and [`verify`] checks — at runtime, from real executions —
//!   that a code path has no singular remote waits and predicts how far a
//!   slow node's impact would propagate.
//!
//! # Quick example
//!
//! The paper's motivating snippet — broadcast `AppendEntries`, proceed on a
//! majority — looks like this (with the RPC layer from `depfast-rpc`
//! supplying the per-peer events):
//!
//! ```
//! use depfast::event::{Notify, QuorumEvent, Signal, WaitResult};
//! use depfast::runtime::Runtime;
//! use simkit::{NodeId, Sim};
//!
//! let sim = Sim::new(1);
//! let rt = Runtime::new_sim(sim.clone(), NodeId(0));
//! let quorum = QuorumEvent::majority(&rt);
//! let peers: Vec<Notify> = (0..3).map(|_| Notify::new(&rt)).collect();
//! for p in &peers {
//!     quorum.add(p);
//! }
//! // Two of three replies arrive; the third (fail-slow) never does.
//! peers[0].set(Signal::Ok);
//! peers[1].set(Signal::Ok);
//! let q = quorum.clone();
//! let done = sim.block_on(async move { q.wait().await });
//! assert_eq!(done, WaitResult::Ready);
//! ```

pub mod event;
pub mod runtime;
pub mod spg;
pub mod trace;
pub mod verify;

pub use event::{
    AndEvent, EventHandle, EventId, EventKind, Notify, OrEvent, PhaseGuard, PhaseSpan, QuorumEvent,
    Signal, TimerEvent, TypedEvent, ValueEvent, WaitResult, Watchable,
};
pub use runtime::{
    current_coro_label, current_phase, set_trace_ctx, trace_ctx, CoroId, Coroutine, Runtime,
};
pub use trace::{HealthEvent, SpanId, TraceCtx, TraceRecord, Tracer, WaitObservation, WaitProbe};
