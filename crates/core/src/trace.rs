//! Event trace points: the raw material for runtime verification.
//!
//! §3.3: *"Having events as trace points, DepFast supports runtime
//! verification and trace analysis for fail-slow fault tolerance."* Every
//! event creation, fire, wait-begin and wait-end can be recorded; RPC
//! completions additionally feed per-peer latency aggregates that the
//! fail-slow detector (`depfast-detect`) consumes online.
//!
//! Full recording is opt-in ([`Tracer::set_record_full`]) because a
//! saturated benchmark produces millions of records; aggregates are cheap
//! and always on.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::time::Duration;

use depfast_metrics::{Key, MetricsRegistry};
use simkit::{NodeId, SimTime};

use crate::event::{EventId, EventKind, Signal, WaitResult};
use crate::runtime::CoroId;

/// One trace record. Records are self-contained: analysis never needs the
/// live event objects.
#[derive(Debug, Clone)]
pub enum TraceRecord {
    /// A coroutine was launched.
    CoroutineStart {
        /// Virtual time.
        t: SimTime,
        /// Node the coroutine runs on.
        node: NodeId,
        /// Coroutine id.
        coro: CoroId,
        /// Label given to [`Coroutine::create`](crate::Coroutine::create).
        label: &'static str,
    },
    /// An event was created.
    EventCreated {
        /// Virtual time.
        t: SimTime,
        /// Owning node.
        node: NodeId,
        /// Creating coroutine, if created inside one.
        coro: Option<CoroId>,
        /// Event id.
        event: EventId,
        /// Structural kind.
        kind: EventKind,
        /// Waiting-point label.
        label: &'static str,
    },
    /// A child was added to a compound event.
    ChildAdded {
        /// Virtual time.
        t: SimTime,
        /// The compound event.
        parent: EventId,
        /// The added child.
        child: EventId,
        /// `(k, n)` snapshot of the parent after this add, for quorum-like
        /// parents (lets analysis recover thresholds of nested quorums).
        parent_meta: Option<(usize, usize)>,
    },
    /// An event fired.
    EventFired {
        /// Virtual time.
        t: SimTime,
        /// Event id.
        event: EventId,
        /// Outcome.
        signal: Signal,
    },
    /// A coroutine began waiting on an event.
    WaitBegin {
        /// Virtual time.
        t: SimTime,
        /// Waiting node.
        node: NodeId,
        /// Waiting coroutine, if inside one.
        coro: Option<CoroId>,
        /// Event being waited on.
        event: EventId,
        /// Label of the waiting coroutine (`"?"` outside any coroutine).
        coro_label: &'static str,
        /// `(k, n)` snapshot for quorum-like events.
        quorum: Option<(usize, usize)>,
    },
    /// A wait finished.
    WaitEnd {
        /// Virtual time.
        t: SimTime,
        /// Waiting node.
        node: NodeId,
        /// Waiting coroutine, if inside one.
        coro: Option<CoroId>,
        /// Event that was waited on.
        event: EventId,
        /// What the wait observed.
        result: WaitResult,
        /// How long the wait blocked.
        waited: Duration,
    },
}

/// Aggregate of RPC completion latencies for one (caller, callee, label).
#[derive(Debug, Clone, Copy, Default)]
pub struct RpcSample {
    /// Completions observed.
    pub count: u64,
    /// Completions that fired [`Signal::Err`].
    pub errors: u64,
    /// Sum of latencies.
    pub total: Duration,
    /// Maximum latency.
    pub max: Duration,
}

impl RpcSample {
    /// Mean completion latency (zero if no samples).
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.total / self.count as u32
        }
    }
}

/// Key of an RPC latency aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RpcSampleKey {
    /// Calling node.
    pub caller: NodeId,
    /// Called node (the one whose slowness the latency reflects).
    pub callee: NodeId,
    /// RPC label.
    pub label: &'static str,
}

struct TraceInner {
    record_full: bool,
    records: Vec<TraceRecord>,
    samples: HashMap<RpcSampleKey, RpcSample>,
    next_event: u64,
    next_coro: u64,
    metrics: MetricsRegistry,
}

/// The cluster-shared trace sink and id allocator. Cheap to clone.
#[derive(Clone)]
pub struct Tracer {
    inner: Rc<RefCell<TraceInner>>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// Creates a tracer with full recording disabled and a private metric
    /// registry (suitable for unit tests; clusters built on a simulated
    /// world use [`Tracer::with_metrics`] instead).
    pub fn new() -> Self {
        Self::with_metrics(MetricsRegistry::new())
    }

    /// Creates a tracer that records into `metrics` — typically the
    /// registry of the underlying `simkit` world, so RPC-, event- and
    /// driver-level series land next to the substrate's `sim.*` series.
    pub fn with_metrics(metrics: MetricsRegistry) -> Self {
        Tracer {
            inner: Rc::new(RefCell::new(TraceInner {
                record_full: false,
                records: Vec::new(),
                samples: HashMap::new(),
                next_event: 0,
                next_coro: 0,
                metrics,
            })),
        }
    }

    /// The metric registry this tracer records into.
    pub fn metrics(&self) -> MetricsRegistry {
        self.inner.borrow().metrics.clone()
    }

    /// Enables or disables full record collection.
    pub fn set_record_full(&self, on: bool) {
        self.inner.borrow_mut().record_full = on;
    }

    /// `true` if full records are being collected.
    pub fn record_full(&self) -> bool {
        self.inner.borrow().record_full
    }

    /// Allocates a cluster-unique event id.
    pub fn next_event_id(&self) -> EventId {
        let mut inner = self.inner.borrow_mut();
        let id = inner.next_event;
        inner.next_event += 1;
        EventId(id)
    }

    /// Allocates a cluster-unique coroutine id.
    pub fn next_coro_id(&self) -> CoroId {
        let mut inner = self.inner.borrow_mut();
        let id = inner.next_coro;
        inner.next_coro += 1;
        CoroId(id)
    }

    /// Records `make()` if full recording is on. The closure keeps the
    /// disabled path allocation-free.
    pub fn record(&self, make: impl FnOnce() -> TraceRecord) {
        let mut inner = self.inner.borrow_mut();
        if inner.record_full {
            let rec = make();
            inner.records.push(rec);
        }
    }

    /// Feeds one RPC completion into the per-peer aggregates.
    pub fn sample_rpc(
        &self,
        caller: NodeId,
        callee: NodeId,
        label: &'static str,
        latency: Duration,
        signal: Signal,
    ) {
        let mut inner = self.inner.borrow_mut();
        let agg = inner
            .samples
            .entry(RpcSampleKey {
                caller,
                callee,
                label,
            })
            .or_default();
        agg.count += 1;
        if signal == Signal::Err {
            agg.errors += 1;
        }
        agg.total += latency;
        agg.max = agg.max.max(latency);
        // Mirror into the shared registry, scoped to the *callee*: an
        // `rpc.latency` series that inflates names the slow peer, which is
        // exactly the attribution the fail-slow detector needs.
        let metrics = inner.metrics.clone();
        drop(inner);
        metrics
            .histogram(Key::tagged("rpc.latency", callee.0, label))
            .record(latency);
        if signal == Signal::Err {
            metrics
                .counter(Key::tagged("rpc.errors", callee.0, label))
                .inc();
        }
    }

    /// Snapshot of all full records collected so far.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.inner.borrow().records.clone()
    }

    /// Number of full records collected so far.
    pub fn record_count(&self) -> usize {
        self.inner.borrow().records.len()
    }

    /// Drains and returns the RPC latency aggregates accumulated since the
    /// last drain. The fail-slow detector calls this periodically.
    pub fn drain_rpc_samples(&self) -> Vec<(RpcSampleKey, RpcSample)> {
        let mut out: Vec<_> = self
            .inner
            .borrow_mut()
            .samples
            .drain()
            .collect();
        out.sort_by_key(|(k, _)| *k);
        out
    }

    /// Clears all full records (aggregates are untouched).
    pub fn clear_records(&self) {
        self.inner.borrow_mut().records.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_sequential() {
        let t = Tracer::new();
        assert_eq!(t.next_event_id(), EventId(0));
        assert_eq!(t.next_event_id(), EventId(1));
        assert_eq!(t.next_coro_id(), CoroId(0));
        assert_eq!(t.next_coro_id(), CoroId(1));
    }

    #[test]
    fn recording_is_gated() {
        let t = Tracer::new();
        t.record(|| panic!("must not be built when disabled"));
        assert_eq!(t.record_count(), 0);
        t.set_record_full(true);
        t.record(|| TraceRecord::EventFired {
            t: SimTime::ZERO,
            event: EventId(0),
            signal: Signal::Ok,
        });
        assert_eq!(t.record_count(), 1);
        t.clear_records();
        assert_eq!(t.record_count(), 0);
    }

    #[test]
    fn rpc_samples_aggregate_and_drain() {
        let t = Tracer::new();
        let key = RpcSampleKey {
            caller: NodeId(0),
            callee: NodeId(1),
            label: "append",
        };
        t.sample_rpc(
            key.caller,
            key.callee,
            key.label,
            Duration::from_millis(2),
            Signal::Ok,
        );
        t.sample_rpc(
            key.caller,
            key.callee,
            key.label,
            Duration::from_millis(4),
            Signal::Err,
        );
        let drained = t.drain_rpc_samples();
        assert_eq!(drained.len(), 1);
        let (k, agg) = drained[0];
        assert_eq!(k, key);
        assert_eq!(agg.count, 2);
        assert_eq!(agg.errors, 1);
        assert_eq!(agg.mean(), Duration::from_millis(3));
        assert_eq!(agg.max, Duration::from_millis(4));
        // Second drain is empty.
        assert!(t.drain_rpc_samples().is_empty());
    }

    #[test]
    fn rpc_samples_mirror_into_the_metric_registry() {
        let r = MetricsRegistry::new();
        let t = Tracer::with_metrics(r.clone());
        t.sample_rpc(
            NodeId(0),
            NodeId(2),
            "append",
            Duration::from_millis(7),
            Signal::Ok,
        );
        t.sample_rpc(
            NodeId(0),
            NodeId(2),
            "append",
            Duration::from_millis(9),
            Signal::Err,
        );
        // Scoped to the callee (node 2), tagged with the RPC label.
        let h = r.histogram(Key::tagged("rpc.latency", 2, "append"));
        assert_eq!(h.snapshot().count, 2);
        assert_eq!(h.snapshot().max_ns, 9_000_000);
        assert_eq!(r.counter(Key::tagged("rpc.errors", 2, "append")).get(), 1);
        // Draining the aggregates leaves the cumulative histograms alone.
        t.drain_rpc_samples();
        assert_eq!(h.snapshot().count, 2);
    }
}
