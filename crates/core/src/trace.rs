//! Event trace points: the raw material for runtime verification.
//!
//! §3.3: *"Having events as trace points, DepFast supports runtime
//! verification and trace analysis for fail-slow fault tolerance."* Every
//! event creation, fire, wait-begin and wait-end can be recorded; RPC
//! completions additionally feed per-peer latency aggregates that the
//! fail-slow detector (`depfast-detect`) consumes online.
//!
//! Full recording is opt-in ([`Tracer::set_record_full`]) because a
//! saturated benchmark produces millions of records; aggregates are cheap
//! and always on.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::time::Duration;

use depfast_metrics::{Counter, Key, MetricsRegistry};
use simkit::{NodeId, SimTime};

use crate::event::{EventId, EventKind, Signal, WaitResult};
use crate::runtime::CoroId;

/// Identifier of a span in a request's causal tree.
///
/// Spans are not a third id space: every span *is* either an event or a
/// coroutine, so a `SpanId` is an [`EventId`] or a [`CoroId`] with one
/// discriminator bit. `SpanId(0)` is reserved as "no span" for the wire
/// encoding (the first event id maps to span 2, the first coroutine id to
/// span 1, so 0 is never produced).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The "no span" sentinel used on the wire (`0`).
    pub const NONE: SpanId = SpanId(0);

    /// The span identifying event `e`.
    pub fn event(e: EventId) -> SpanId {
        SpanId((e.0 + 1) << 1)
    }

    /// The span identifying coroutine `c`.
    pub fn coro(c: CoroId) -> SpanId {
        SpanId(((c.0 + 1) << 1) | 1)
    }

    /// The event this span denotes, if it is an event span.
    pub fn as_event(self) -> Option<EventId> {
        (self.0 != 0 && self.0 & 1 == 0).then(|| EventId((self.0 >> 1) - 1))
    }

    /// The coroutine this span denotes, if it is a coroutine span.
    pub fn as_coro(self) -> Option<CoroId> {
        (self.0 != 0 && self.0 & 1 == 1).then(|| CoroId((self.0 >> 1) - 1))
    }
}

/// Causal context of one client operation, propagated from the KV client
/// through RPC envelopes into the Raft drivers (§3.3's trace analysis,
/// taken from per-event records to per-*request* trees).
///
/// The context travels ambiently: every coroutine carries at most one, the
/// runtime restores it around polls, and [`crate::trace_ctx`] /
/// [`crate::set_trace_ctx`] read and replace the current coroutine's
/// context. RPC envelopes carry it across nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceCtx {
    /// The client operation this work belongs to.
    pub trace_id: u64,
    /// The span that caused the current work (an RPC event, a parent
    /// coroutine, ...). [`SpanId::NONE`] at the root.
    pub parent_span: SpanId,
}

/// One trace record. Records are self-contained: analysis never needs the
/// live event objects.
#[derive(Debug, Clone)]
pub enum TraceRecord {
    /// A new request trace was started (at the KV client, typically).
    TraceBegin {
        /// Virtual time.
        t: SimTime,
        /// Node the request originates from.
        node: NodeId,
        /// The allocated trace id.
        trace_id: u64,
        /// What the request is (e.g. `"kv_request"`).
        label: &'static str,
    },
    /// A coroutine was launched.
    CoroutineStart {
        /// Virtual time.
        t: SimTime,
        /// Node the coroutine runs on.
        node: NodeId,
        /// Coroutine id.
        coro: CoroId,
        /// Label given to [`Coroutine::create`](crate::Coroutine::create).
        label: &'static str,
        /// Causal context inherited at spawn, if any.
        ctx: Option<TraceCtx>,
    },
    /// An event was created.
    EventCreated {
        /// Virtual time.
        t: SimTime,
        /// Owning node.
        node: NodeId,
        /// Creating coroutine, if created inside one.
        coro: Option<CoroId>,
        /// Event id.
        event: EventId,
        /// Structural kind.
        kind: EventKind,
        /// Waiting-point label.
        label: &'static str,
        /// Causal context active at creation, if any.
        ctx: Option<TraceCtx>,
    },
    /// Links a proposal's completion event to the replication round
    /// (quorum event) that carries it — the hop critical-path analysis
    /// walks from a committed command into the quorum's children.
    RoundLink {
        /// Virtual time.
        t: SimTime,
        /// The proposal's completion event.
        proposal: EventId,
        /// The replication round's quorum event.
        round: EventId,
    },
    /// A child was added to a compound event.
    ChildAdded {
        /// Virtual time.
        t: SimTime,
        /// The compound event.
        parent: EventId,
        /// The added child.
        child: EventId,
        /// `(k, n)` snapshot of the parent after this add, for quorum-like
        /// parents (lets analysis recover thresholds of nested quorums).
        parent_meta: Option<(usize, usize)>,
    },
    /// An event fired.
    EventFired {
        /// Virtual time.
        t: SimTime,
        /// Event id.
        event: EventId,
        /// Outcome.
        signal: Signal,
    },
    /// A coroutine began waiting on an event.
    WaitBegin {
        /// Virtual time.
        t: SimTime,
        /// Waiting node.
        node: NodeId,
        /// Waiting coroutine, if inside one.
        coro: Option<CoroId>,
        /// Event being waited on.
        event: EventId,
        /// Label of the waiting coroutine (`"?"` outside any coroutine).
        coro_label: &'static str,
        /// `(k, n)` snapshot for quorum-like events.
        quorum: Option<(usize, usize)>,
    },
    /// A wait finished.
    WaitEnd {
        /// Virtual time.
        t: SimTime,
        /// Waiting node.
        node: NodeId,
        /// Waiting coroutine, if inside one.
        coro: Option<CoroId>,
        /// Event that was waited on.
        event: EventId,
        /// What the wait observed.
        result: WaitResult,
        /// How long the wait blocked.
        waited: Duration,
    },
}

/// Aggregate of RPC completion latencies for one (caller, callee, label).
#[derive(Debug, Clone, Copy, Default)]
pub struct RpcSample {
    /// Completions observed.
    pub count: u64,
    /// Completions that fired [`Signal::Err`].
    pub errors: u64,
    /// Sum of latencies.
    pub total: Duration,
    /// Maximum latency.
    pub max: Duration,
}

impl RpcSample {
    /// Mean completion latency (zero if no samples).
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.total / self.count as u32
        }
    }
}

/// Key of an RPC latency aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RpcSampleKey {
    /// Calling node.
    pub caller: NodeId,
    /// Called node (the one whose slowness the latency reflects).
    pub callee: NodeId,
    /// RPC label.
    pub label: &'static str,
}

/// Default cap on full-record collection (~a few hundred MB worst case);
/// see [`Tracer::set_record_capacity`].
pub const DEFAULT_RECORD_CAPACITY: usize = 4_000_000;

/// One finished event wait, delivered synchronously to an installed
/// [wait probe](Tracer::set_wait_probe).
///
/// This is the profiler's feed: unlike full trace records it is not
/// buffered, carries the ambient coroutine/phase attribution already
/// resolved, and costs one `Option` check when no probe is installed.
#[derive(Debug, Clone, Copy)]
pub struct WaitObservation {
    /// Node the waiting coroutine runs on.
    pub node: NodeId,
    /// Label of the waiting coroutine (`"?"` outside any coroutine).
    pub coro_label: &'static str,
    /// Protocol phase active at the wait, if any.
    pub phase: Option<&'static str>,
    /// Structural kind of the awaited event.
    pub kind: EventKind,
    /// Label of the awaited event.
    pub label: &'static str,
    /// `(k, n)` snapshot for quorum-like events.
    pub quorum: Option<(usize, usize)>,
    /// What the wait observed.
    pub result: WaitResult,
    /// How long the wait blocked (virtual time).
    pub waited: Duration,
}

/// Callback receiving every finished wait while installed.
pub type WaitProbe = Rc<dyn Fn(&WaitObservation)>;

/// One structured health-state transition reported by a reacting layer
/// (the fail-slow detector, a driver's quarantine machinery, the leader
/// mitigation, ...). Unlike full trace records these are always on: they
/// are rare by construction — a healthy run records none — and they are
/// the raw material of the incident timeline (`depfast-incident`), which
/// joins them against the fault ledger's ground truth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthEvent {
    /// Virtual time of the transition.
    pub t: SimTime,
    /// The *subject* node — the one suspected / quarantined / demoted —
    /// not the observer that recorded the transition.
    pub node: NodeId,
    /// Reacting layer: `"detector"`, `"raft"`, `"mitigation"`.
    pub layer: &'static str,
    /// State transition, e.g. `"suspect"`, `"quarantine"`, `"probe"`,
    /// `"resume"`, `"clear"`, `"confirm"`.
    pub transition: &'static str,
    /// Free-form supporting evidence (deterministically formatted).
    pub evidence: String,
    /// Raft group the transition belongs to, when the reacting layer is
    /// group-scoped (multi-group clusters tag raft-layer events with
    /// their group id). `None` for node-level layers — the detector
    /// watches a node's RPC latencies regardless of which co-located
    /// group produced them — and for legacy single-group runs.
    pub group: Option<u32>,
}

/// Cap on buffered health events; a run that floods past it is itself an
/// incident (counted in the global `trace.health_dropped` metric, which
/// incident and survival reports surface as a warning when non-zero).
pub const HEALTH_EVENT_CAPACITY: usize = 65_536;

struct TraceInner {
    record_full: bool,
    records: Vec<TraceRecord>,
    capacity: usize,
    dropped: Counter,
    samples: HashMap<RpcSampleKey, RpcSample>,
    health: Vec<HealthEvent>,
    health_dropped: Counter,
    next_event: u64,
    next_coro: u64,
    next_trace: u64,
    metrics: MetricsRegistry,
    wait_probe: Option<WaitProbe>,
}

/// The cluster-shared trace sink and id allocator. Cheap to clone.
#[derive(Clone)]
pub struct Tracer {
    inner: Rc<RefCell<TraceInner>>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// Creates a tracer with full recording disabled and a private metric
    /// registry (suitable for unit tests; clusters built on a simulated
    /// world use [`Tracer::with_metrics`] instead).
    pub fn new() -> Self {
        Self::with_metrics(MetricsRegistry::new())
    }

    /// Creates a tracer that records into `metrics` — typically the
    /// registry of the underlying `simkit` world, so RPC-, event- and
    /// driver-level series land next to the substrate's `sim.*` series.
    pub fn with_metrics(metrics: MetricsRegistry) -> Self {
        Tracer {
            inner: Rc::new(RefCell::new(TraceInner {
                record_full: false,
                records: Vec::new(),
                capacity: DEFAULT_RECORD_CAPACITY,
                dropped: metrics.counter(Key::global("trace.dropped")),
                samples: HashMap::new(),
                health: Vec::new(),
                health_dropped: metrics.counter(Key::global("trace.health_dropped")),
                next_event: 0,
                next_coro: 0,
                // Trace id 0 is the wire's "untraced" sentinel.
                next_trace: 1,
                metrics,
                wait_probe: None,
            })),
        }
    }

    /// The metric registry this tracer records into.
    pub fn metrics(&self) -> MetricsRegistry {
        self.inner.borrow().metrics.clone()
    }

    /// Enables or disables full record collection.
    pub fn set_record_full(&self, on: bool) {
        self.inner.borrow_mut().record_full = on;
    }

    /// `true` if full records are being collected.
    pub fn record_full(&self) -> bool {
        self.inner.borrow().record_full
    }

    /// Allocates a cluster-unique event id.
    pub fn next_event_id(&self) -> EventId {
        let mut inner = self.inner.borrow_mut();
        let id = inner.next_event;
        inner.next_event += 1;
        EventId(id)
    }

    /// Allocates a cluster-unique coroutine id.
    pub fn next_coro_id(&self) -> CoroId {
        let mut inner = self.inner.borrow_mut();
        let id = inner.next_coro;
        inner.next_coro += 1;
        CoroId(id)
    }

    /// Allocates a cluster-unique trace (client-operation) id. Ids start
    /// at 1; `0` is reserved as "untraced" in wire encodings.
    pub fn next_trace_id(&self) -> u64 {
        let mut inner = self.inner.borrow_mut();
        let id = inner.next_trace;
        inner.next_trace += 1;
        id
    }

    /// Caps full-record collection at `cap` records. Once the buffer is
    /// full, further records are counted in the global `trace.dropped`
    /// metric and discarded, so `--metrics` runs with full recording
    /// cannot exhaust memory. Default: [`DEFAULT_RECORD_CAPACITY`].
    pub fn set_record_capacity(&self, cap: usize) {
        self.inner.borrow_mut().capacity = cap;
    }

    /// Records `make()` if full recording is on. The closure keeps the
    /// disabled path allocation-free.
    pub fn record(&self, make: impl FnOnce() -> TraceRecord) {
        let mut inner = self.inner.borrow_mut();
        if inner.record_full {
            if inner.records.len() < inner.capacity {
                let rec = make();
                inner.records.push(rec);
            } else {
                inner.dropped.inc();
            }
        }
    }

    /// Installs (or, with `None`, removes) the wait probe: a callback
    /// invoked synchronously for every finished event wait on runtimes
    /// sharing this tracer. At most one probe is installed at a time; the
    /// profiler owns it for the duration of a profiled run.
    pub fn set_wait_probe(&self, probe: Option<WaitProbe>) {
        self.inner.borrow_mut().wait_probe = probe;
    }

    /// Delivers a finished wait to the installed probe, if any. The closure
    /// keeps the disabled path free of attribution lookups.
    pub fn probe_wait(&self, make: impl FnOnce() -> WaitObservation) {
        // Clone the probe out so the callback runs without holding the
        // tracer borrow (it may legitimately read tracer state).
        let probe = self.inner.borrow().wait_probe.clone();
        if let Some(p) = probe {
            p(&make());
        }
    }

    /// Feeds one RPC completion into the per-peer aggregates.
    pub fn sample_rpc(
        &self,
        caller: NodeId,
        callee: NodeId,
        label: &'static str,
        latency: Duration,
        signal: Signal,
    ) {
        let mut inner = self.inner.borrow_mut();
        let agg = inner
            .samples
            .entry(RpcSampleKey {
                caller,
                callee,
                label,
            })
            .or_default();
        agg.count += 1;
        if signal == Signal::Err {
            agg.errors += 1;
        }
        agg.total += latency;
        agg.max = agg.max.max(latency);
        // Mirror into the shared registry, scoped to the *callee*: an
        // `rpc.latency` series that inflates names the slow peer, which is
        // exactly the attribution the fail-slow detector needs.
        let metrics = inner.metrics.clone();
        drop(inner);
        metrics
            .histogram(Key::tagged("rpc.latency", callee.0, label))
            .record(latency);
        if signal == Signal::Err {
            metrics
                .counter(Key::tagged("rpc.errors", callee.0, label))
                .inc();
        }
    }

    /// Snapshot of all full records collected so far.
    ///
    /// Clones the buffer; when the trace is consumed exactly once prefer
    /// [`Tracer::take_records`].
    pub fn records(&self) -> Vec<TraceRecord> {
        self.inner.borrow().records.clone()
    }

    /// Moves the full-record buffer out, leaving it empty. The capacity
    /// budget resets with it: subsequent records fill a fresh buffer.
    pub fn take_records(&self) -> Vec<TraceRecord> {
        std::mem::take(&mut self.inner.borrow_mut().records)
    }

    /// Number of full records collected so far.
    pub fn record_count(&self) -> usize {
        self.inner.borrow().records.len()
    }

    /// Drains and returns the RPC latency aggregates accumulated since the
    /// last drain. The fail-slow detector calls this periodically.
    pub fn drain_rpc_samples(&self) -> Vec<(RpcSampleKey, RpcSample)> {
        let mut out: Vec<_> = self.inner.borrow_mut().samples.drain().collect();
        out.sort_by_key(|(k, _)| *k);
        out
    }

    /// Clears all full records (aggregates are untouched).
    pub fn clear_records(&self) {
        self.inner.borrow_mut().records.clear();
    }

    /// Records one health-state transition. Always on (no gating flag):
    /// reacting layers call this only when something is actually wrong,
    /// so a healthy run's buffer stays empty — which the incident layer's
    /// false-positive tests rely on.
    pub fn record_health(&self, event: HealthEvent) {
        let mut inner = self.inner.borrow_mut();
        if inner.health.len() < HEALTH_EVENT_CAPACITY {
            inner.health.push(event);
        } else {
            inner.health_dropped.inc();
        }
    }

    /// Snapshot of all health events recorded so far (in recording order;
    /// the incident layer canonicalizes ordering before serializing).
    pub fn health_events(&self) -> Vec<HealthEvent> {
        self.inner.borrow().health.clone()
    }

    /// Number of health events dropped on the capacity cap
    /// (`trace.health_dropped`). Non-zero means the health timeline is
    /// incomplete — reports must say so rather than present a truncated
    /// timeline as the whole story.
    pub fn health_dropped(&self) -> u64 {
        self.inner.borrow().health_dropped.get()
    }

    /// Moves the health-event buffer out, leaving it empty.
    pub fn take_health_events(&self) -> Vec<HealthEvent> {
        std::mem::take(&mut self.inner.borrow_mut().health)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_sequential() {
        let t = Tracer::new();
        assert_eq!(t.next_event_id(), EventId(0));
        assert_eq!(t.next_event_id(), EventId(1));
        assert_eq!(t.next_coro_id(), CoroId(0));
        assert_eq!(t.next_coro_id(), CoroId(1));
    }

    #[test]
    fn recording_is_gated() {
        let t = Tracer::new();
        t.record(|| panic!("must not be built when disabled"));
        assert_eq!(t.record_count(), 0);
        t.set_record_full(true);
        t.record(|| TraceRecord::EventFired {
            t: SimTime::ZERO,
            event: EventId(0),
            signal: Signal::Ok,
        });
        assert_eq!(t.record_count(), 1);
        t.clear_records();
        assert_eq!(t.record_count(), 0);
    }

    #[test]
    fn rpc_samples_aggregate_and_drain() {
        let t = Tracer::new();
        let key = RpcSampleKey {
            caller: NodeId(0),
            callee: NodeId(1),
            label: "append",
        };
        t.sample_rpc(
            key.caller,
            key.callee,
            key.label,
            Duration::from_millis(2),
            Signal::Ok,
        );
        t.sample_rpc(
            key.caller,
            key.callee,
            key.label,
            Duration::from_millis(4),
            Signal::Err,
        );
        let drained = t.drain_rpc_samples();
        assert_eq!(drained.len(), 1);
        let (k, agg) = drained[0];
        assert_eq!(k, key);
        assert_eq!(agg.count, 2);
        assert_eq!(agg.errors, 1);
        assert_eq!(agg.mean(), Duration::from_millis(3));
        assert_eq!(agg.max, Duration::from_millis(4));
        // Second drain is empty.
        assert!(t.drain_rpc_samples().is_empty());
    }

    #[test]
    fn span_ids_are_disjoint_and_invertible() {
        let e = SpanId::event(EventId(0));
        let c = SpanId::coro(CoroId(0));
        assert_ne!(e, c);
        assert_ne!(e, SpanId::NONE);
        assert_ne!(c, SpanId::NONE);
        assert_eq!(e.as_event(), Some(EventId(0)));
        assert_eq!(e.as_coro(), None);
        assert_eq!(c.as_coro(), Some(CoroId(0)));
        assert_eq!(c.as_event(), None);
        assert_eq!(SpanId::NONE.as_event(), None);
        assert_eq!(SpanId::NONE.as_coro(), None);
        assert_eq!(SpanId::event(EventId(41)).as_event(), Some(EventId(41)));
    }

    #[test]
    fn record_capacity_caps_and_counts_drops() {
        let r = MetricsRegistry::new();
        let t = Tracer::with_metrics(r.clone());
        t.set_record_full(true);
        t.set_record_capacity(3);
        for i in 0..5 {
            t.record(|| TraceRecord::EventFired {
                t: SimTime::ZERO,
                event: EventId(i),
                signal: Signal::Ok,
            });
        }
        assert_eq!(t.record_count(), 3);
        assert_eq!(r.counter(Key::global("trace.dropped")).get(), 2);
        // Taking the buffer frees the budget again.
        let taken = t.take_records();
        assert_eq!(taken.len(), 3);
        assert_eq!(t.record_count(), 0);
        t.record(|| TraceRecord::EventFired {
            t: SimTime::ZERO,
            event: EventId(9),
            signal: Signal::Ok,
        });
        assert_eq!(t.record_count(), 1);
        assert_eq!(r.counter(Key::global("trace.dropped")).get(), 2);
    }

    #[test]
    fn health_events_are_always_on_and_capped() {
        let r = MetricsRegistry::new();
        let t = Tracer::with_metrics(r.clone());
        assert!(t.health_events().is_empty());
        t.record_health(HealthEvent {
            t: SimTime::from_nanos(5),
            node: NodeId(2),
            layer: "detector",
            transition: "suspect",
            evidence: "mean 40ms vs baseline 1ms".into(),
            group: None,
        });
        // Recording is not gated on record_full.
        assert!(!t.record_full());
        assert_eq!(t.health_events().len(), 1);
        assert_eq!(t.health_events()[0].node, NodeId(2));
        let taken = t.take_health_events();
        assert_eq!(taken.len(), 1);
        assert!(t.health_events().is_empty());
        assert_eq!(r.counter(Key::global("trace.health_dropped")).get(), 0);
    }

    #[test]
    fn take_records_moves_the_buffer() {
        let t = Tracer::new();
        t.set_record_full(true);
        t.record(|| TraceRecord::EventFired {
            t: SimTime::ZERO,
            event: EventId(0),
            signal: Signal::Ok,
        });
        assert_eq!(t.take_records().len(), 1);
        assert!(t.take_records().is_empty());
    }

    #[test]
    fn drained_rpc_samples_are_ordered_under_label_collisions() {
        // Same label used by several (caller, callee) pairs, plus two
        // labels on the same pair: the drain order must be the total
        // (caller, callee, label) order regardless of insertion order.
        let t = Tracer::new();
        let lat = Duration::from_millis(1);
        for (caller, callee, label) in [
            (2u32, 1u32, "append"),
            (0, 2, "vote"),
            (0, 2, "append"),
            (1, 0, "append"),
            (0, 1, "append"),
        ] {
            t.sample_rpc(NodeId(caller), NodeId(callee), label, lat, Signal::Ok);
        }
        let keys: Vec<RpcSampleKey> = t.drain_rpc_samples().into_iter().map(|(k, _)| k).collect();
        let expect: Vec<RpcSampleKey> = [
            (0u32, 1u32, "append"),
            (0, 2, "append"),
            (0, 2, "vote"),
            (1, 0, "append"),
            (2, 1, "append"),
        ]
        .into_iter()
        .map(|(caller, callee, label)| RpcSampleKey {
            caller: NodeId(caller),
            callee: NodeId(callee),
            label,
        })
        .collect();
        assert_eq!(keys, expect);
    }

    #[test]
    fn rpc_samples_mirror_into_the_metric_registry() {
        let r = MetricsRegistry::new();
        let t = Tracer::with_metrics(r.clone());
        t.sample_rpc(
            NodeId(0),
            NodeId(2),
            "append",
            Duration::from_millis(7),
            Signal::Ok,
        );
        t.sample_rpc(
            NodeId(0),
            NodeId(2),
            "append",
            Duration::from_millis(9),
            Signal::Err,
        );
        // Scoped to the callee (node 2), tagged with the RPC label.
        let h = r.histogram(Key::tagged("rpc.latency", 2, "append"));
        assert_eq!(h.snapshot().count, 2);
        assert_eq!(h.snapshot().max_ns, 9_000_000);
        assert_eq!(r.counter(Key::tagged("rpc.errors", 2, "append")).get(), 1);
        // Draining the aggregates leaves the cumulative histograms alone.
        t.drain_rpc_samples();
        assert_eq!(h.snapshot().count, 2);
    }
}
