//! The DepFast runtime: coroutines on a cooperative scheduler.
//!
//! §3.3: *"A DepFast runtime instance consists of four major components:
//! coroutines, events, a scheduler, and I/O helper threads."* One
//! [`Runtime`] is created per server node; its scheduler is supplied by a
//! [`TimeDriver`] (in this repository, the deterministic `simkit`
//! executor), and "I/O helper threads" are asynchronous completions with
//! modelled latency from the same substrate.
//!
//! Multiple runtime instances share one [`Tracer`], which is
//! how cross-node waiting-for relationships are stitched together for the
//! slowness propagation graph (§3.3, "multiple DepFast runtime instances
//! will work together for the tracing").

use std::cell::Cell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};
use std::time::Duration;

use simkit::{LocalBoxFuture, NodeId, Sim, SimTime};

use crate::trace::{TraceCtx, TraceRecord, Tracer};

/// Identifier of a coroutine, unique within one [`Tracer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoroId(pub u64);

/// The scheduling substrate a [`Runtime`] runs on.
///
/// The simulation driver wraps [`simkit::Sim`]. The abstraction keeps the
/// DepFast programming model independent of the substrate, as the paper's
/// framework/logic separation demands.
pub trait TimeDriver {
    /// Current (virtual) time.
    fn now(&self) -> SimTime;
    /// Wakes `waker` at instant `at`.
    fn schedule_wake(&self, at: SimTime, waker: Waker);
    /// Runs `f` on the scheduler thread at instant `at`.
    fn schedule_call(&self, at: SimTime, f: Box<dyn FnOnce()>);
    /// Spawns a task.
    fn spawn(&self, fut: LocalBoxFuture<()>);
    /// Draws from the substrate's seeded random stream.
    fn rand_u64(&self) -> u64;
}

struct SimDriver(Sim);

impl TimeDriver for SimDriver {
    fn now(&self) -> SimTime {
        self.0.now()
    }
    fn schedule_wake(&self, at: SimTime, waker: Waker) {
        self.0.schedule_wake(at, waker);
    }
    fn schedule_call(&self, at: SimTime, f: Box<dyn FnOnce()>) {
        self.0.schedule_call(at, f);
    }
    fn spawn(&self, fut: LocalBoxFuture<()>) {
        self.0.spawn(fut);
    }
    fn rand_u64(&self) -> u64 {
        self.0.rand_u64()
    }
}

struct RtInner {
    node: NodeId,
    driver: Box<dyn TimeDriver>,
    tracer: Tracer,
}

/// One DepFast runtime instance, scoped to a node.
///
/// Cheap to clone. Everything an event or coroutine needs — time, timers,
/// spawning, tracing, node identity — flows through here.
#[derive(Clone)]
pub struct Runtime {
    inner: Rc<RtInner>,
}

impl Runtime {
    /// Creates a runtime on the simulation substrate with a private tracer.
    pub fn new_sim(sim: Sim, node: NodeId) -> Self {
        Self::with_tracer(sim, node, Tracer::new())
    }

    /// Creates a runtime sharing `tracer` with other runtime instances
    /// (required for cluster-wide SPGs).
    pub fn with_tracer(sim: Sim, node: NodeId, tracer: Tracer) -> Self {
        Runtime {
            inner: Rc::new(RtInner {
                node,
                driver: Box::new(SimDriver(sim)),
                tracer,
            }),
        }
    }

    /// Creates a runtime over a custom [`TimeDriver`].
    pub fn with_driver(driver: Box<dyn TimeDriver>, node: NodeId, tracer: Tracer) -> Self {
        Runtime {
            inner: Rc::new(RtInner {
                node,
                driver,
                tracer,
            }),
        }
    }

    /// The node this runtime instance belongs to.
    pub fn node(&self) -> NodeId {
        self.inner.node
    }

    /// The shared tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.inner.tracer
    }

    /// Current (virtual) time.
    pub fn now(&self) -> SimTime {
        self.inner.driver.now()
    }

    /// Wakes `waker` at instant `at`.
    pub fn schedule_wake(&self, at: SimTime, waker: Waker) {
        self.inner.driver.schedule_wake(at, waker);
    }

    /// Runs `f` on the scheduler thread at instant `at`.
    pub fn schedule_call(&self, at: SimTime, f: impl FnOnce() + 'static) {
        self.inner.driver.schedule_call(at, Box::new(f));
    }

    /// Sleeps for virtual duration `d`.
    pub async fn sleep(&self, d: Duration) {
        let deadline = self.now() + d;
        DriverSleep {
            rt: self.clone(),
            deadline,
            armed: false,
        }
        .await
    }

    /// Draws a uniformly random `u64` from the substrate's seeded stream.
    pub fn rand_u64(&self) -> u64 {
        self.inner.driver.rand_u64()
    }

    /// Draws a random value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn rand_range(&self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "rand_range requires lo < hi");
        lo + self.rand_u64() % (hi - lo)
    }

    /// Spawns a bare task (without coroutine identity). Prefer
    /// [`Coroutine::create`] for logic code so waits are attributed.
    pub fn spawn(&self, fut: impl Future<Output = ()> + 'static) {
        self.inner.driver.spawn(Box::pin(fut));
    }
}

struct DriverSleep {
    rt: Runtime,
    deadline: SimTime,
    armed: bool,
}

impl Future for DriverSleep {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.rt.now() >= self.deadline {
            Poll::Ready(())
        } else {
            if !self.armed {
                self.armed = true;
                self.rt.schedule_wake(self.deadline, cx.waker().clone());
            }
            Poll::Pending
        }
    }
}

thread_local! {
    static CURRENT_CORO: Cell<Option<(NodeId, CoroId, &'static str)>> = const { Cell::new(None) };
    static CURRENT_TRACE: Cell<Option<TraceCtx>> = const { Cell::new(None) };
    static CURRENT_PHASE: Cell<Option<&'static str>> = const { Cell::new(None) };
}

/// The coroutine currently being polled, if any (node, coroutine id).
pub(crate) fn current_coro() -> Option<(NodeId, CoroId)> {
    CURRENT_CORO.with(|c| c.get()).map(|(n, id, _)| (n, id))
}

/// The label of the coroutine currently being polled, if any.
///
/// Public so the wait-state profiler (`depfast-profile`) can attribute
/// resource and event waits to the logical task that incurred them.
pub fn current_coro_label() -> Option<&'static str> {
    CURRENT_CORO.with(|c| c.get()).map(|(_, _, l)| l)
}

/// The protocol phase the current coroutine is executing, if any.
///
/// Phases are set by [`PhaseSpan`](crate::PhaseSpan) /
/// [`PhaseGuard`](crate::PhaseGuard) and, like the causal context, are
/// per-coroutine state: they survive awaits and are restored around every
/// poll. The profiler uses this to partition a coroutine's waits by phase.
pub fn current_phase() -> Option<&'static str> {
    CURRENT_PHASE.with(|c| c.get())
}

/// Replaces the current coroutine's ambient phase, returning the previous
/// one. Used by the RAII phase annotations; prefer those over calling this
/// directly so the previous phase is always restored.
pub fn swap_current_phase(phase: Option<&'static str>) -> Option<&'static str> {
    CURRENT_PHASE.with(|c| c.replace(phase))
}

/// The causal context of the coroutine currently being polled, if any.
///
/// The context is per-coroutine state: it survives awaits, is inherited by
/// coroutines spawned while it is set, and is stamped onto every event the
/// coroutine creates (and every RPC it sends).
pub fn trace_ctx() -> Option<TraceCtx> {
    CURRENT_TRACE.with(|c| c.get())
}

/// Replaces the current coroutine's causal context.
///
/// Outside a coroutine poll this still sets the ambient context for the
/// remainder of the synchronous call, which covers events created from
/// plain callbacks; it does not persist anywhere.
pub fn set_trace_ctx(ctx: Option<TraceCtx>) {
    CURRENT_TRACE.with(|c| c.set(ctx));
}

/// The coroutine interface (§3.1): launch logic tasks with identity.
///
/// `Coroutine::create` mirrors the paper's `Coroutine::Create(...)`. The
/// label names the task in traces, SPGs and verification reports.
pub struct Coroutine;

impl Coroutine {
    /// Spawns `fut` as a labelled coroutine on `rt` and returns its id.
    ///
    /// # Examples
    ///
    /// ```
    /// use depfast::runtime::{Coroutine, Runtime};
    /// use simkit::{NodeId, Sim};
    ///
    /// let sim = Sim::new(0);
    /// let rt = Runtime::new_sim(sim.clone(), NodeId(0));
    /// Coroutine::create(&rt, "hello", async move {
    ///     // logic code, written synchronously
    /// });
    /// sim.run();
    /// ```
    pub fn create(
        rt: &Runtime,
        label: &'static str,
        fut: impl Future<Output = ()> + 'static,
    ) -> CoroId {
        // A coroutine spawned while a causal context is active belongs to
        // the same request: inherit the ambient context.
        Self::create_traced(rt, label, trace_ctx(), fut)
    }

    /// Spawns `fut` as a labelled coroutine carrying an explicit causal
    /// context (used by the RPC layer to resume the context an envelope
    /// carried across nodes). `None` severs inheritance.
    pub fn create_traced(
        rt: &Runtime,
        label: &'static str,
        trace: Option<TraceCtx>,
        fut: impl Future<Output = ()> + 'static,
    ) -> CoroId {
        let id = rt.tracer().next_coro_id();
        let node = rt.node();
        let t = rt.now();
        rt.tracer().record(|| TraceRecord::CoroutineStart {
            t,
            node,
            coro: id,
            label,
            ctx: trace,
        });
        rt.spawn(Scoped {
            ctx: (node, id, label),
            trace: Cell::new(trace),
            phase: Cell::new(None),
            fut,
        });
        id
    }
}

/// Wrapper future that exposes coroutine identity (and carries the
/// coroutine's causal context and protocol phase) during polls.
struct Scoped<F> {
    ctx: (NodeId, CoroId, &'static str),
    trace: Cell<Option<TraceCtx>>,
    phase: Cell<Option<&'static str>>,
    fut: F,
}

impl<F: Future> Future for Scoped<F> {
    type Output = F::Output;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<F::Output> {
        // SAFETY: we never move `fut` out of the pinned wrapper; this is
        // standard structural pinning of the only non-`Unpin` field.
        let (ctx, trace, phase, fut) = unsafe {
            let this = self.get_unchecked_mut();
            (
                this.ctx,
                &this.trace,
                &this.phase,
                Pin::new_unchecked(&mut this.fut),
            )
        };
        let prev = CURRENT_CORO.with(|c| c.replace(Some(ctx)));
        let prev_trace = CURRENT_TRACE.with(|c| c.replace(trace.get()));
        let prev_phase = CURRENT_PHASE.with(|c| c.replace(phase.get()));
        let out = fut.poll(cx);
        // Read the ambient slots back so a mid-poll `set_trace_ctx` or
        // phase change sticks to this coroutine across awaits.
        trace.set(CURRENT_TRACE.with(|c| c.replace(prev_trace)));
        phase.set(CURRENT_PHASE.with(|c| c.replace(prev_phase)));
        CURRENT_CORO.with(|c| c.set(prev));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    #[test]
    fn coroutine_identity_visible_during_poll() {
        let sim = Sim::new(1);
        let rt = Runtime::new_sim(sim.clone(), NodeId(3));
        let seen = Rc::new(RefCell::new(None));
        let seen2 = seen.clone();
        let id = Coroutine::create(&rt, "probe", async move {
            *seen2.borrow_mut() = current_coro();
        });
        sim.run();
        assert_eq!(*seen.borrow(), Some((NodeId(3), id)));
        // Outside any poll there is no current coroutine.
        assert_eq!(current_coro(), None);
    }

    #[test]
    fn nested_spawn_restores_outer_identity() {
        let sim = Sim::new(1);
        let rt = Runtime::new_sim(sim.clone(), NodeId(0));
        let log = Rc::new(RefCell::new(Vec::new()));
        let l = log.clone();
        let rt2 = rt.clone();
        Coroutine::create(&rt, "outer", async move {
            l.borrow_mut().push(current_coro().unwrap().1);
            let l2 = l.clone();
            Coroutine::create(&rt2, "inner", async move {
                l2.borrow_mut().push(current_coro().unwrap().1);
            });
            rt2.sleep(Duration::from_millis(1)).await;
            l.borrow_mut().push(current_coro().unwrap().1);
        });
        sim.run();
        let log = log.borrow();
        assert_eq!(log.len(), 3);
        assert_eq!(log[0], log[2]);
        assert_ne!(log[0], log[1]);
    }

    #[test]
    fn runtime_sleep_uses_virtual_time() {
        let sim = Sim::new(1);
        let rt = Runtime::new_sim(sim.clone(), NodeId(0));
        let rt2 = rt.clone();
        sim.block_on(async move {
            rt2.sleep(Duration::from_millis(250)).await;
        });
        assert_eq!(sim.now(), SimTime::from_millis(250));
    }

    #[test]
    fn rand_range_within_bounds() {
        let sim = Sim::new(7);
        let rt = Runtime::new_sim(sim, NodeId(0));
        for _ in 0..100 {
            let v = rt.rand_range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn trace_ctx_sticks_to_coroutine_and_is_inherited() {
        use crate::trace::SpanId;
        let sim = Sim::new(1);
        let rt = Runtime::new_sim(sim.clone(), NodeId(0));
        let seen = Rc::new(RefCell::new(Vec::new()));
        let s = seen.clone();
        let rt2 = rt.clone();
        let ctx = TraceCtx {
            trace_id: 7,
            parent_span: SpanId::NONE,
        };
        Coroutine::create(&rt, "outer", async move {
            assert_eq!(trace_ctx(), None);
            set_trace_ctx(Some(ctx));
            // Spawned while the ctx is set: the child inherits it.
            let s2 = s.clone();
            Coroutine::create(&rt2, "inner", async move {
                s2.borrow_mut().push(("inner", trace_ctx()));
            });
            // The ctx survives this coroutine's own awaits.
            rt2.sleep(Duration::from_millis(1)).await;
            s.borrow_mut().push(("outer", trace_ctx()));
        });
        sim.run();
        assert_eq!(
            *seen.borrow(),
            vec![("inner", Some(ctx)), ("outer", Some(ctx))]
        );
        // The ambient slot is clean outside any poll.
        assert_eq!(trace_ctx(), None);
    }

    #[test]
    fn create_traced_sets_and_severs_context() {
        use crate::trace::SpanId;
        let sim = Sim::new(1);
        let rt = Runtime::new_sim(sim.clone(), NodeId(0));
        let seen = Rc::new(RefCell::new(Vec::new()));
        let ctx = TraceCtx {
            trace_id: 3,
            parent_span: SpanId::coro(CoroId(99)),
        };
        let s1 = seen.clone();
        Coroutine::create_traced(&rt, "with", Some(ctx), async move {
            s1.borrow_mut().push(trace_ctx());
        });
        let s2 = seen.clone();
        Coroutine::create_traced(&rt, "without", None, async move {
            s2.borrow_mut().push(trace_ctx());
        });
        sim.run();
        assert_eq!(*seen.borrow(), vec![Some(ctx), None]);
    }

    #[test]
    fn shared_tracer_spans_runtimes() {
        let sim = Sim::new(1);
        let tracer = Tracer::new();
        tracer.set_record_full(true);
        let a = Runtime::with_tracer(sim.clone(), NodeId(0), tracer.clone());
        let b = Runtime::with_tracer(sim.clone(), NodeId(1), tracer.clone());
        Coroutine::create(&a, "on-a", async {});
        Coroutine::create(&b, "on-b", async {});
        sim.run();
        let recs = tracer.records();
        let nodes: Vec<NodeId> = recs
            .iter()
            .filter_map(|r| match r {
                TraceRecord::CoroutineStart { node, .. } => Some(*node),
                _ => None,
            })
            .collect();
        assert_eq!(nodes, vec![NodeId(0), NodeId(1)]);
    }
}
