//! The shared state every event is built from.

use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};
use std::time::Duration;

use simkit::{NodeId, SimTime};

use crate::runtime::{
    current_coro, current_coro_label, current_phase, swap_current_phase, trace_ctx, Runtime,
};
use crate::trace::{TraceRecord, WaitObservation};

/// Identifier of an event, unique within one [`Tracer`](crate::Tracer)
/// (i.e. cluster-wide when runtimes share a tracer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub u64);

/// Terminal outcome an event fires with.
///
/// Compound events count both: a [`QuorumEvent`](super::QuorumEvent)
/// becomes ready on enough `Ok` children and *unreachable* once too many
/// children signal `Err` — the "minority-plus-one-reject" conditions of
/// §3.2 fall out of this distinction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Signal {
    /// The awaited thing happened (reply arrived, write durable, ...).
    Ok,
    /// The awaited thing definitively failed (RPC error, vote rejected).
    Err,
}

/// What a wait observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitResult {
    /// The event fired with [`Signal::Ok`].
    Ready,
    /// The event fired with [`Signal::Err`].
    Failed,
    /// The wait's deadline passed before the event fired.
    Timeout,
}

impl WaitResult {
    /// `true` for [`WaitResult::Ready`].
    pub fn is_ready(self) -> bool {
        matches!(self, WaitResult::Ready)
    }

    /// `true` for [`WaitResult::Timeout`].
    pub fn is_timeout(self) -> bool {
        matches!(self, WaitResult::Timeout)
    }
}

/// The structural kind of an event, used by tracing and SPG construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Manually-triggered condition.
    Notify,
    /// Watched variable threshold.
    Value,
    /// Virtual-time timer.
    Timer,
    /// Local disk I/O completion.
    Io,
    /// Remote procedure call completion; `target` is the callee node.
    Rpc {
        /// Node the call was sent to (where the slowness would come from).
        target: NodeId,
    },
    /// k-of-n compound event.
    Quorum,
    /// All-of compound event.
    And,
    /// Any-of compound event.
    Or,
    /// Driver-annotated phase of request processing (WAL append, inline
    /// cold read, flow-control probe, ...). Nothing waits on phase events;
    /// they exist so critical-path analysis can decompose a driver's time
    /// and charge it to `blame` — the node whose slowness the phase's
    /// duration evidences (often the annotating node itself).
    Phase {
        /// Node this phase's duration is charged to.
        blame: NodeId,
    },
}

impl EventKind {
    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Notify => "notify",
            EventKind::Value => "value",
            EventKind::Timer => "timer",
            EventKind::Io => "io",
            EventKind::Rpc { .. } => "rpc",
            EventKind::Quorum => "quorum",
            EventKind::And => "and",
            EventKind::Or => "or",
            EventKind::Phase { .. } => "phase",
        }
    }
}

type Hook = Box<dyn FnOnce(Signal)>;

struct Inner {
    id: EventId,
    label: &'static str,
    kind: EventKind,
    node: NodeId,
    created_at: SimTime,
    fired: Option<Signal>,
    sample: bool,
    wakers: Vec<Waker>,
    hooks: Vec<Hook>,
    /// `(k, n)` for quorum-like events, maintained by the owner.
    quorum_meta: Option<(usize, usize)>,
}

/// The reference-counted core shared by all event types.
///
/// `EventHandle` provides firing, hook subscription (how compound events
/// watch their children) and the [`Wait`] future. Concrete event types wrap
/// a handle and add their own semantics.
#[derive(Clone)]
pub struct EventHandle {
    rt: Runtime,
    inner: Rc<RefCell<Inner>>,
}

/// Anything that exposes an [`EventHandle`] and can therefore be awaited or
/// added to a compound event.
pub trait Watchable {
    /// The underlying event core.
    fn handle(&self) -> &EventHandle;
}

impl Watchable for EventHandle {
    fn handle(&self) -> &EventHandle {
        self
    }
}

impl EventHandle {
    /// Creates a fresh, unfired event owned by `rt`'s node.
    pub fn new(rt: &Runtime, kind: EventKind, label: &'static str) -> Self {
        Self::with_sampling(rt, kind, label, true)
    }

    /// Like [`EventHandle::new`], but lets derived events (e.g. a
    /// classified view over an RPC reply) opt out of RPC latency sampling
    /// so the underlying completion is not double-counted.
    pub fn with_sampling(rt: &Runtime, kind: EventKind, label: &'static str, sample: bool) -> Self {
        let id = rt.tracer().next_event_id();
        let node = rt.node();
        let created_at = rt.now();
        rt.tracer().record(|| TraceRecord::EventCreated {
            t: created_at,
            node,
            coro: current_coro().map(|(_, c)| c),
            event: id,
            kind,
            label,
            ctx: trace_ctx(),
        });
        EventHandle {
            rt: rt.clone(),
            inner: Rc::new(RefCell::new(Inner {
                id,
                label,
                kind,
                node,
                created_at,
                fired: None,
                sample,
                wakers: Vec::new(),
                hooks: Vec::new(),
                quorum_meta: None,
            })),
        }
    }

    /// This event's id.
    pub fn id(&self) -> EventId {
        self.inner.borrow().id
    }

    /// The label given at creation (names the waiting point in reports).
    pub fn label(&self) -> &'static str {
        self.inner.borrow().label
    }

    /// The structural kind.
    pub fn kind(&self) -> EventKind {
        self.inner.borrow().kind
    }

    /// Node that created the event.
    pub fn node(&self) -> NodeId {
        self.inner.borrow().node
    }

    /// Virtual time at which the event was created.
    pub fn created_at(&self) -> SimTime {
        self.inner.borrow().created_at
    }

    /// The runtime this event belongs to.
    pub fn runtime(&self) -> &Runtime {
        &self.rt
    }

    /// `true` once the event has fired with [`Signal::Ok`].
    pub fn ready(&self) -> bool {
        self.inner.borrow().fired == Some(Signal::Ok)
    }

    /// The signal the event fired with, if any.
    pub fn fired(&self) -> Option<Signal> {
        self.inner.borrow().fired
    }

    /// Sets the `(k, n)` metadata traced for quorum-like events.
    pub(crate) fn set_quorum_meta(&self, k: usize, n: usize) {
        self.inner.borrow_mut().quorum_meta = Some((k, n));
    }

    /// Current `(k, n)` metadata, if this is a quorum-like event.
    pub fn quorum_meta(&self) -> Option<(usize, usize)> {
        self.inner.borrow().quorum_meta
    }

    /// Fires the event. Idempotent: only the first signal takes effect.
    ///
    /// Waiters are woken and subscribed hooks run immediately (still on the
    /// scheduler thread), so compound parents observe the child in the same
    /// instant.
    pub fn fire(&self, signal: Signal) {
        let (wakers, hooks, latency, kind, sample) = {
            let mut inner = self.inner.borrow_mut();
            if inner.fired.is_some() {
                return;
            }
            inner.fired = Some(signal);
            (
                std::mem::take(&mut inner.wakers),
                std::mem::take(&mut inner.hooks),
                self.rt.now() - inner.created_at,
                inner.kind,
                inner.sample,
            )
        };
        let t = self.rt.now();
        self.rt.tracer().record(|| TraceRecord::EventFired {
            t,
            event: self.id(),
            signal,
        });
        // RPC completion latency feeds the fail-slow detector's per-peer
        // statistics.
        if sample {
            if let EventKind::Rpc { target } = kind {
                self.rt
                    .tracer()
                    .sample_rpc(self.node(), target, self.label(), latency, signal);
            }
        }
        for w in wakers {
            w.wake();
        }
        for h in hooks {
            h(signal);
        }
    }

    /// Subscribes `hook` to run when the event fires (immediately if it
    /// already has). Used by compound events to watch children.
    pub fn on_fire(&self, hook: impl FnOnce(Signal) + 'static) {
        let fired = self.inner.borrow().fired;
        match fired {
            Some(s) => hook(s),
            None => self.inner.borrow_mut().hooks.push(Box::new(hook)),
        }
    }

    /// Returns a future that resolves when the event fires.
    pub fn wait(&self) -> Wait {
        Wait {
            handle: self.clone(),
            deadline: None,
            begun_at: None,
            timer_armed: false,
        }
    }

    /// Returns a future that resolves when the event fires or after `d`.
    pub fn wait_timeout(&self, d: Duration) -> Wait {
        Wait {
            handle: self.clone(),
            deadline: Some(self.rt.now() + d),
            begun_at: None,
            timer_armed: false,
        }
    }

    fn register_waker(&self, waker: Waker) {
        let mut inner = self.inner.borrow_mut();
        // Deduplicate: a task re-polled by a spurious wake must not add a
        // second registration (quadratic wake storms otherwise).
        if !inner.wakers.iter().any(|w| w.will_wake(&waker)) {
            inner.wakers.push(waker);
        }
    }
}

/// Future returned by [`EventHandle::wait`] / [`EventHandle::wait_timeout`].
///
/// Each `Wait` is one *waiting point*: its begin and end are trace records,
/// which is what lets [`crate::verify`] classify the wait and
/// [`crate::spg`] draw it as an edge.
pub struct Wait {
    handle: EventHandle,
    deadline: Option<SimTime>,
    begun_at: Option<SimTime>,
    timer_armed: bool,
}

impl Wait {
    fn finish(&self, result: WaitResult) {
        let h = &self.handle;
        let t = h.rt.now();
        let begun = self.begun_at.unwrap_or(t);
        h.rt.tracer().record(|| TraceRecord::WaitEnd {
            t,
            node: h.rt.node(),
            coro: current_coro().map(|(_, c)| c),
            event: h.id(),
            result,
            waited: t - begun,
        });
        h.rt.tracer().probe_wait(|| WaitObservation {
            node: h.rt.node(),
            coro_label: current_coro_label().unwrap_or("?"),
            phase: current_phase(),
            kind: h.kind(),
            label: h.label(),
            quorum: h.quorum_meta(),
            result,
            waited: t - begun,
        });
    }
}

impl Future for Wait {
    type Output = WaitResult;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<WaitResult> {
        let h = self.handle.clone();
        if self.begun_at.is_none() {
            let t = h.rt.now();
            self.begun_at = Some(t);
            h.rt.tracer().record(|| TraceRecord::WaitBegin {
                t,
                node: h.rt.node(),
                coro: current_coro().map(|(_, c)| c),
                coro_label: current_coro_label().unwrap_or("?"),
                event: h.id(),
                quorum: h.quorum_meta(),
            });
        }
        if let Some(signal) = h.fired() {
            let result = match signal {
                Signal::Ok => WaitResult::Ready,
                Signal::Err => WaitResult::Failed,
            };
            self.finish(result);
            return Poll::Ready(result);
        }
        if let Some(deadline) = self.deadline {
            if h.rt.now() >= deadline {
                self.finish(WaitResult::Timeout);
                return Poll::Ready(WaitResult::Timeout);
            }
            if !self.timer_armed {
                self.timer_armed = true;
                h.rt.schedule_wake(deadline, cx.waker().clone());
            }
        }
        h.register_waker(cx.waker().clone());
        Poll::Pending
    }
}

/// RAII annotation of one *phase* of request processing inside a driver
/// (WAL append, inline cold read, commit wait, ...).
///
/// A phase span is an ordinary event of kind [`EventKind::Phase`]: created
/// when the phase begins, fired `Ok` when it ends (or when the span is
/// dropped), carrying the ambient [`TraceCtx`](crate::TraceCtx) like any
/// other event. Nothing ever waits on it — it exists purely so trace
/// analysis can decompose where a driver's wall-clock time went and charge
/// each slice to the node named by `blame`.
pub struct PhaseSpan {
    handle: EventHandle,
    prev_phase: Option<&'static str>,
}

impl PhaseSpan {
    /// Opens a phase charged to the annotating node itself.
    pub fn begin(rt: &Runtime, label: &'static str) -> Self {
        Self::begin_blaming(rt, label, rt.node())
    }

    /// Opens a phase whose duration is charged to `blame` (e.g. an inline
    /// cold read performed *for* a lagging peer).
    pub fn begin_blaming(rt: &Runtime, label: &'static str, blame: NodeId) -> Self {
        // Besides the trace event, the span sets the coroutine's ambient
        // phase so the wait-state profiler attributes everything awaited
        // inside it (and every simkit resource it consumes) to `label`.
        let prev_phase = swap_current_phase(Some(label));
        PhaseSpan {
            handle: EventHandle::with_sampling(rt, EventKind::Phase { blame }, label, false),
            prev_phase,
        }
    }

    /// The underlying event.
    pub fn handle(&self) -> &EventHandle {
        &self.handle
    }

    /// Closes the phase explicitly (dropping the span does the same).
    pub fn end(self) {}
}

impl Drop for PhaseSpan {
    fn drop(&mut self) {
        swap_current_phase(self.prev_phase);
        self.handle.fire(Signal::Ok);
    }
}

/// Lightweight RAII phase annotation that only sets the coroutine's ambient
/// phase — no trace event is created or fired.
///
/// Use this to label waits for the profiler in paths where a full
/// [`PhaseSpan`] would perturb the event-id stream or add trace volume
/// (e.g. per-iteration waits in hot driver loops). Nesting restores the
/// enclosing phase on drop, so guards compose with spans.
pub struct PhaseGuard {
    prev_phase: Option<&'static str>,
}

impl PhaseGuard {
    /// Sets the current coroutine's ambient phase to `label` until drop.
    pub fn enter(label: &'static str) -> Self {
        PhaseGuard {
            prev_phase: swap_current_phase(Some(label)),
        }
    }
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        swap_current_phase(self.prev_phase);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::Sim;

    fn rt() -> (Sim, Runtime) {
        let sim = Sim::new(1);
        let rt = Runtime::new_sim(sim.clone(), NodeId(0));
        (sim, rt)
    }

    #[test]
    fn fire_is_idempotent() {
        let (_sim, rt) = rt();
        let h = EventHandle::new(&rt, EventKind::Notify, "t");
        h.fire(Signal::Ok);
        h.fire(Signal::Err);
        assert_eq!(h.fired(), Some(Signal::Ok));
        assert!(h.ready());
    }

    #[test]
    fn wait_resolves_on_fire() {
        let (sim, rt) = rt();
        let h = EventHandle::new(&rt, EventKind::Notify, "t");
        let h2 = h.clone();
        let s = sim.clone();
        let out = sim.block_on(async move {
            s.spawn(async move {
                h2.fire(Signal::Ok);
            });
            h.wait().await
        });
        assert_eq!(out, WaitResult::Ready);
    }

    #[test]
    fn wait_observes_err_as_failed() {
        let (sim, rt) = rt();
        let h = EventHandle::new(&rt, EventKind::Notify, "t");
        h.fire(Signal::Err);
        let out = sim.block_on(async move { h.wait().await });
        assert_eq!(out, WaitResult::Failed);
    }

    #[test]
    fn wait_timeout_fires_at_deadline() {
        let (sim, rt) = rt();
        let h = EventHandle::new(&rt, EventKind::Notify, "t");
        let out = sim.block_on(async move { h.wait_timeout(Duration::from_millis(10)).await });
        assert_eq!(out, WaitResult::Timeout);
        assert_eq!(sim.now(), SimTime::from_millis(10));
    }

    #[test]
    fn hook_runs_immediately_if_already_fired() {
        let (_sim, rt) = rt();
        let h = EventHandle::new(&rt, EventKind::Notify, "t");
        h.fire(Signal::Ok);
        let hit = Rc::new(RefCell::new(None));
        let hit2 = hit.clone();
        h.on_fire(move |s| *hit2.borrow_mut() = Some(s));
        assert_eq!(*hit.borrow(), Some(Signal::Ok));
    }

    #[test]
    fn phase_annotations_nest_and_stick_across_awaits() {
        use crate::runtime::{current_phase, Coroutine};
        let (sim, rt) = rt();
        let seen = Rc::new(RefCell::new(Vec::new()));
        let s = seen.clone();
        let rt2 = rt.clone();
        Coroutine::create(&rt, "probe", async move {
            assert_eq!(current_phase(), None);
            let _span = PhaseSpan::begin(&rt2, "outer");
            s.borrow_mut().push(current_phase());
            {
                let _g = PhaseGuard::enter("inner");
                s.borrow_mut().push(current_phase());
                // The phase survives this coroutine's own awaits.
                rt2.sleep(Duration::from_millis(1)).await;
                s.borrow_mut().push(current_phase());
            }
            s.borrow_mut().push(current_phase());
        });
        sim.run();
        assert_eq!(
            *seen.borrow(),
            vec![Some("outer"), Some("inner"), Some("inner"), Some("outer")]
        );
        // The ambient slot is clean outside any poll.
        assert_eq!(current_phase(), None);
    }

    #[test]
    fn wait_probe_sees_phase_and_event_attribution() {
        use crate::runtime::Coroutine;
        use crate::trace::WaitObservation;
        let (sim, rt) = rt();
        let seen: Rc<RefCell<Vec<WaitObservation>>> = Rc::new(RefCell::new(Vec::new()));
        let s = seen.clone();
        rt.tracer()
            .set_wait_probe(Some(Rc::new(move |o: &WaitObservation| {
                s.borrow_mut().push(*o);
            })));
        let h = EventHandle::new(&rt, EventKind::Io, "wal_fsync");
        let h2 = h.clone();
        let rt2 = rt.clone();
        Coroutine::create(&rt, "server", async move {
            let _span = PhaseSpan::begin(&rt2, "wal_append");
            h2.wait().await;
        });
        let s2 = sim.clone();
        sim.spawn(async move {
            s2.sleep(Duration::from_millis(3)).await;
            h.fire(Signal::Ok);
        });
        sim.run();
        let seen = seen.borrow();
        // The phase span's own fire also finishes no wait; exactly the one
        // explicit wait is observed.
        assert_eq!(seen.len(), 1);
        let o = &seen[0];
        assert_eq!(o.coro_label, "server");
        assert_eq!(o.phase, Some("wal_append"));
        assert_eq!(o.label, "wal_fsync");
        assert_eq!(o.kind, EventKind::Io);
        assert_eq!(o.result, WaitResult::Ready);
        assert_eq!(o.waited, Duration::from_millis(3));
        drop(seen);
        rt.tracer().set_wait_probe(None);
    }

    #[test]
    fn multiple_waiters_all_wake() {
        let (sim, rt) = rt();
        let h = EventHandle::new(&rt, EventKind::Notify, "t");
        let a = sim.spawn({
            let h = h.clone();
            async move { h.wait().await }
        });
        let b = sim.spawn({
            let h = h.clone();
            async move { h.wait().await }
        });
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(Duration::from_millis(1)).await;
            h.fire(Signal::Ok);
        });
        sim.run();
        assert_eq!(a.try_take(), Some(WaitResult::Ready));
        assert_eq!(b.try_take(), Some(WaitResult::Ready));
    }
}
