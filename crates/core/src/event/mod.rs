//! The event abstraction: every waiting point is an object.
//!
//! DepFast (§3.1–3.2) distinguishes **basic events** — network and disk
//! completions, timers, "wait for a variable to reach a value" — from
//! **compound events** that combine them: [`QuorumEvent`] (any k of n),
//! [`AndEvent`] (all), [`OrEvent`] (any). Compound events nest, which is
//! how the paper expresses conditions like *fast-quorum ok, or
//! minority-plus-one reject, or timeout* without shredding the logic into
//! callbacks.
//!
//! Every event carries a label and feeds the [`trace`](crate::trace) layer,
//! so the same objects that structure the code also structure its runtime
//! verification.

mod basic;
mod compound;
mod core;
mod quorum;

pub use basic::{Notify, TimerEvent, TypedEvent, ValueEvent};
pub use compound::{AndEvent, OrEvent};
pub use core::{
    EventHandle, EventId, EventKind, PhaseGuard, PhaseSpan, Signal, Wait, WaitResult, Watchable,
};
pub use quorum::{QuorumEvent, QuorumMode};
