//! Basic (non-compound) event types.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use super::core::{EventHandle, EventKind, Signal, Watchable};
use crate::runtime::Runtime;

/// A manually-triggered condition event.
///
/// The simplest basic event: something calls [`Notify::set`], waiters
/// resume. Useful for in-process conditions ("stop requested", "snapshot
/// installed").
///
/// # Examples
///
/// ```
/// use depfast::event::{Notify, Signal, Watchable};
/// use depfast::runtime::Runtime;
/// use simkit::{NodeId, Sim};
///
/// let sim = Sim::new(0);
/// let rt = Runtime::new_sim(sim.clone(), NodeId(0));
/// let n = Notify::new(&rt);
/// assert!(!n.handle().ready());
/// n.set(Signal::Ok);
/// assert!(n.handle().ready());
/// ```
#[derive(Clone)]
pub struct Notify {
    handle: EventHandle,
}

impl Notify {
    /// Creates an unfired notification event.
    pub fn new(rt: &Runtime) -> Self {
        Self::labeled(rt, "notify")
    }

    /// Creates an unfired notification event with a report label.
    pub fn labeled(rt: &Runtime, label: &'static str) -> Self {
        Notify {
            handle: EventHandle::new(rt, EventKind::Notify, label),
        }
    }

    /// Fires the event (idempotent).
    pub fn set(&self, signal: Signal) {
        self.handle.fire(signal);
    }
}

impl Watchable for Notify {
    fn handle(&self) -> &EventHandle {
        &self.handle
    }
}

/// An event that carries a payload when it fires.
///
/// This is the shape of RPC-reply and disk-completion events: the waiter
/// needs both the signal *and* the response. `depfast-rpc` builds its
/// `RpcEvent` on this, with [`EventKind::Rpc`] so the tracer knows the
/// remote target; `depfast-storage` uses [`EventKind::Io`].
#[derive(Clone)]
pub struct TypedEvent<T> {
    handle: EventHandle,
    value: Rc<RefCell<Option<T>>>,
}

impl<T> TypedEvent<T> {
    /// Creates an unfired typed event of structural `kind`.
    pub fn new(rt: &Runtime, kind: EventKind, label: &'static str) -> Self {
        TypedEvent {
            handle: EventHandle::new(rt, kind, label),
            value: Rc::new(RefCell::new(None)),
        }
    }

    /// Fires with [`Signal::Ok`], storing the payload for the waiter.
    pub fn fire_ok(&self, value: T) {
        *self.value.borrow_mut() = Some(value);
        self.handle.fire(Signal::Ok);
    }

    /// Fires with [`Signal::Err`] (no payload).
    pub fn fire_err(&self) {
        self.handle.fire(Signal::Err);
    }

    /// Takes the payload, if the event fired `Ok` and it was not yet taken.
    pub fn take(&self) -> Option<T> {
        self.value.borrow_mut().take()
    }

    /// Reads the payload without consuming it.
    pub fn peek<R>(&self, f: impl FnOnce(Option<&T>) -> R) -> R {
        f(self.value.borrow().as_ref())
    }
}

impl<T> Watchable for TypedEvent<T> {
    fn handle(&self) -> &EventHandle {
        &self.handle
    }
}

/// A virtual-time timer event.
#[derive(Clone)]
pub struct TimerEvent {
    handle: EventHandle,
}

impl TimerEvent {
    /// Creates an event that fires [`Signal::Ok`] after `d`.
    pub fn after(rt: &Runtime, d: Duration) -> Self {
        let handle = EventHandle::new(rt, EventKind::Timer, "timer");
        let h = handle.clone();
        let at = rt.now() + d;
        rt.schedule_call(at, move || h.fire(Signal::Ok));
        TimerEvent { handle }
    }
}

impl Watchable for TimerEvent {
    fn handle(&self) -> &EventHandle {
        &self.handle
    }
}

struct ValueInner<T> {
    value: T,
    // Waiters keyed by the threshold they are waiting for.
    waiters: Vec<(T, EventHandle)>,
}

/// A watched variable: waiters block until it reaches a threshold.
///
/// The paper lists "waiting for a variable to be set [to a] certain value"
/// among the basic events. The canonical use in an RSM is the *commit
/// index*: the apply loop waits until `commit_index >= n`.
///
/// # Examples
///
/// ```
/// use depfast::event::ValueEvent;
/// use depfast::runtime::Runtime;
/// use simkit::{NodeId, Sim};
///
/// let sim = Sim::new(0);
/// let rt = Runtime::new_sim(sim.clone(), NodeId(0));
/// let commit = ValueEvent::new(&rt, 0u64);
/// let at5 = commit.when_at_least(5);
/// commit.set(3);
/// assert!(!at5.ready());
/// commit.set(7);
/// assert!(at5.ready());
/// assert_eq!(commit.get(), 7);
/// ```
#[derive(Clone)]
pub struct ValueEvent<T: Copy + PartialOrd> {
    rt: Runtime,
    label: &'static str,
    kind: EventKind,
    inner: Rc<RefCell<ValueInner<T>>>,
}

impl<T: Copy + PartialOrd + 'static> ValueEvent<T> {
    /// Creates a watched variable with an initial value.
    pub fn new(rt: &Runtime, initial: T) -> Self {
        Self::labeled(rt, initial, "value")
    }

    /// Creates a watched variable with a report label.
    pub fn labeled(rt: &Runtime, initial: T, label: &'static str) -> Self {
        Self::with_kind(rt, initial, EventKind::Value, label)
    }

    /// Creates a watched variable whose threshold waits carry `kind`
    /// instead of [`EventKind::Value`]. A watermark is often a proxy for
    /// another resource — the WAL's durable index *is* disk completion —
    /// and the kind is what tracing, blame, and the wait-state profiler
    /// classify by.
    pub fn with_kind(rt: &Runtime, initial: T, kind: EventKind, label: &'static str) -> Self {
        ValueEvent {
            rt: rt.clone(),
            label,
            kind,
            inner: Rc::new(RefCell::new(ValueInner {
                value: initial,
                waiters: Vec::new(),
            })),
        }
    }

    /// Current value.
    pub fn get(&self) -> T {
        self.inner.borrow().value
    }

    /// Sets the value if it is larger, firing all satisfied waiters.
    ///
    /// Monotonic semantics fit the RSM use cases (commit index, applied
    /// index, term); a lower value is ignored.
    pub fn set(&self, v: T) {
        let fired: Vec<EventHandle> = {
            let mut inner = self.inner.borrow_mut();
            if v <= inner.value {
                return;
            }
            inner.value = v;
            let mut fired = Vec::new();
            inner.waiters.retain(|(threshold, h)| {
                if *threshold <= v {
                    fired.push(h.clone());
                    false
                } else {
                    true
                }
            });
            fired
        };
        for h in fired {
            h.fire(Signal::Ok);
        }
    }

    /// Returns an event that fires once the value reaches `threshold`
    /// (immediately if it already has).
    pub fn when_at_least(&self, threshold: T) -> EventHandle {
        let h = EventHandle::new(&self.rt, self.kind, self.label);
        let mut inner = self.inner.borrow_mut();
        if inner.value >= threshold {
            drop(inner);
            h.fire(Signal::Ok);
        } else {
            inner.waiters.push((threshold, h.clone()));
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::WaitResult;
    use simkit::{NodeId, Sim};

    fn rt() -> (Sim, Runtime) {
        let sim = Sim::new(1);
        let rt = Runtime::new_sim(sim.clone(), NodeId(0));
        (sim, rt)
    }

    #[test]
    fn typed_event_delivers_payload() {
        let (sim, rt) = rt();
        let e: TypedEvent<String> = TypedEvent::new(&rt, EventKind::Io, "io");
        let e2 = e.clone();
        let out = sim.block_on(async move {
            e2.fire_ok("done".to_string());
            let r = e.handle().wait().await;
            (r, e.take())
        });
        assert_eq!(out.0, WaitResult::Ready);
        assert_eq!(out.1, Some("done".to_string()));
    }

    #[test]
    fn typed_event_err_has_no_payload() {
        let (_sim, rt) = rt();
        let e: TypedEvent<u32> = TypedEvent::new(&rt, EventKind::Io, "io");
        e.fire_err();
        assert_eq!(e.take(), None);
        assert_eq!(e.handle().fired(), Some(Signal::Err));
    }

    #[test]
    fn timer_event_fires_at_deadline() {
        let (sim, rt) = rt();
        let t = TimerEvent::after(&rt, Duration::from_millis(7));
        let out = sim.block_on(async move { t.handle().wait().await });
        assert_eq!(out, WaitResult::Ready);
        assert_eq!(sim.now().as_nanos(), 7_000_000);
    }

    #[test]
    fn value_event_is_monotonic() {
        let (_sim, rt) = rt();
        let v = ValueEvent::new(&rt, 10u64);
        v.set(5); // Ignored: lower than current.
        assert_eq!(v.get(), 10);
        v.set(20);
        assert_eq!(v.get(), 20);
    }

    #[test]
    fn value_event_wakes_thresholds_in_range() {
        let (_sim, rt) = rt();
        let v = ValueEvent::new(&rt, 0u64);
        let a = v.when_at_least(3);
        let b = v.when_at_least(10);
        v.set(5);
        assert!(a.ready());
        assert!(!b.ready());
        v.set(10);
        assert!(b.ready());
    }

    #[test]
    fn value_event_immediate_when_already_reached() {
        let (_sim, rt) = rt();
        let v = ValueEvent::new(&rt, 100u64);
        assert!(v.when_at_least(50).ready());
    }

    #[test]
    fn notify_signals_propagate() {
        let (_sim, rt) = rt();
        let n = Notify::new(&rt);
        n.set(Signal::Err);
        assert_eq!(n.handle().fired(), Some(Signal::Err));
        assert!(!n.handle().ready());
    }
}
