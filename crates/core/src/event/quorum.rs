//! `QuorumEvent`: the key building block for fail-slow fault tolerance.
//!
//! §3.1: *"an QuorumEvent waits for a quorum or a collection of events
//! (e.g., any majority). It allows the coroutine to tolerate fail-slow
//! faults in any minority. [...] The principle of using the DepFast
//! framework to write the logic code of a system is waiting on QuorumEvent
//! as much as possible and avoid waiting on other types of singular-point
//! events."*

use std::cell::RefCell;
use std::rc::Rc;

use depfast_metrics::Key;

use super::core::{EventHandle, EventKind, Signal, Watchable};
use crate::runtime::Runtime;
use crate::trace::TraceRecord;

/// How the threshold of a [`QuorumEvent`] is determined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuorumMode {
    /// `⌊n/2⌋ + 1` of the children added so far (the paper's
    /// `FLAG_MAJORITY`).
    Majority,
    /// A fixed count of `Ok` children.
    Count(usize),
    /// All children (equivalent to an [`AndEvent`](super::AndEvent) but
    /// with quorum accounting).
    All,
}

struct QState {
    mode: QuorumMode,
    n: usize,
    ok: usize,
    err: usize,
    sealed: bool,
    /// Child handles, retained for straggler attribution: when the quorum
    /// fires `Ok`, the children that have *not* fired name the replicas the
    /// round did not wait for.
    children: Vec<EventHandle>,
}

impl QState {
    fn threshold(&self) -> usize {
        match self.mode {
            QuorumMode::Majority => self.n / 2 + 1,
            QuorumMode::Count(k) => k,
            QuorumMode::All => self.n,
        }
    }
}

/// A compound event that becomes ready when *k of n* children fire `Ok`.
///
/// It fires `Err` ("unreachable") as soon as so many children have failed
/// that `k` successes can no longer happen — the precise
/// "minority-plus-one-reject" condition §3.2 says traditional code
/// approximates badly.
///
/// Add all children before the first child can fire (adds are synchronous,
/// completions arrive via the scheduler, so ordinary straight-line code
/// satisfies this automatically); with [`QuorumMode::Majority`] the
/// threshold is evaluated against the current child count.
///
/// **Pitfall:** adding an *already-fired* child first under
/// [`QuorumMode::Majority`] resolves the quorum immediately (majority of
/// one). When seeding a quorum with a pre-fired local event (a self vote,
/// a completed disk write), use [`QuorumMode::Count`] with the final
/// threshold instead — see `depfast-raft`'s leadership-confirmation round
/// for the bug this doc comment is written in memory of.
///
/// # Examples
///
/// ```
/// use depfast::event::{Notify, QuorumEvent, Signal};
/// use depfast::runtime::Runtime;
/// use simkit::{NodeId, Sim};
///
/// let sim = Sim::new(0);
/// let rt = Runtime::new_sim(sim.clone(), NodeId(0));
/// let q = QuorumEvent::majority(&rt);
/// let replies: Vec<Notify> = (0..5).map(|_| Notify::new(&rt)).collect();
/// for r in &replies {
///     q.add(r);
/// }
/// replies[0].set(Signal::Ok);
/// replies[3].set(Signal::Ok);
/// assert!(!q.ready());
/// replies[4].set(Signal::Ok); // 3 of 5: majority reached
/// assert!(q.ready());
/// ```
#[derive(Clone)]
pub struct QuorumEvent {
    handle: EventHandle,
    state: Rc<RefCell<QState>>,
}

impl QuorumEvent {
    /// Creates a quorum event with the given mode and label.
    pub fn labeled(rt: &Runtime, mode: QuorumMode, label: &'static str) -> Self {
        QuorumEvent {
            handle: EventHandle::new(rt, EventKind::Quorum, label),
            state: Rc::new(RefCell::new(QState {
                mode,
                n: 0,
                ok: 0,
                err: 0,
                sealed: false,
                children: Vec::new(),
            })),
        }
    }

    /// Creates a majority quorum event (`FLAG_MAJORITY`).
    pub fn majority(rt: &Runtime) -> Self {
        Self::labeled(rt, QuorumMode::Majority, "quorum")
    }

    /// Creates a fixed-threshold quorum event.
    pub fn count(rt: &Runtime, k: usize) -> Self {
        Self::labeled(rt, QuorumMode::Count(k), "quorum")
    }

    /// Adds a child event; its outcome counts toward the quorum.
    pub fn add(&self, child: &impl Watchable) {
        let child_handle = child.handle();
        let meta = {
            let mut st = self.state.borrow_mut();
            st.n += 1;
            st.children.push(child_handle.clone());
            let (k, n) = (st.threshold(), st.n);
            self.handle.set_quorum_meta(k, n);
            (k, n)
        };
        let rt = self.handle.runtime();
        let t = rt.now();
        rt.tracer().record(|| TraceRecord::ChildAdded {
            t,
            parent: self.handle.id(),
            child: child_handle.id(),
            parent_meta: Some(meta),
        });
        let me = self.clone();
        child_handle.on_fire(move |s| me.on_child(s));
        self.maybe_fire();
    }

    fn on_child(&self, signal: Signal) {
        {
            let mut st = self.state.borrow_mut();
            match signal {
                Signal::Ok => st.ok += 1,
                Signal::Err => st.err += 1,
            }
        }
        self.maybe_fire();
    }

    fn maybe_fire(&self) {
        let outcome = {
            let st = self.state.borrow();
            let k = st.threshold();
            self.handle.set_quorum_meta(k, st.n);
            if st.ok >= k {
                Some(Signal::Ok)
            } else if st.sealed && st.n - st.err < k {
                // Unreachability is only decidable once the child set is
                // complete; sealing happens on the first wait (or an
                // explicit `seal()`).
                Some(Signal::Err)
            } else {
                None
            }
        };
        if let Some(s) = outcome {
            let first = self.handle.fired().is_none();
            self.handle.fire(s);
            if first && s == Signal::Ok {
                self.record_quorum_metrics();
            }
        }
    }

    /// Records how long the quorum took and which replicas it did *not*
    /// wait for — the straggler attribution the paper's §3.3 trace
    /// analysis calls for. Runs exactly once, at the `Ok` fire.
    fn record_quorum_metrics(&self) {
        let rt = self.handle.runtime();
        let metrics = rt.tracer().metrics();
        let label = self.handle.label();
        let waited = rt.now() - self.handle.created_at();
        metrics
            .histogram(Key::tagged(
                "event.quorum.wait",
                self.handle.node().0,
                label,
            ))
            .record(waited);
        for child in self.state.borrow().children.iter() {
            if child.fired().is_none() {
                if let EventKind::Rpc { target } = child.kind() {
                    metrics
                        .counter(Key::tagged("event.quorum.straggler", target.0, label))
                        .inc();
                }
            }
        }
    }

    /// Declares the child set complete, enabling the "quorum unreachable"
    /// (`Err`) outcome. Waiting via [`QuorumEvent::wait`] seals implicitly.
    pub fn seal(&self) {
        self.state.borrow_mut().sealed = true;
        self.maybe_fire();
    }

    /// Seals the child set and waits for the quorum outcome.
    pub fn wait(&self) -> super::core::Wait {
        self.seal();
        self.handle.wait()
    }

    /// Seals the child set and waits with a deadline.
    pub fn wait_timeout(&self, d: std::time::Duration) -> super::core::Wait {
        self.seal();
        self.handle.wait_timeout(d)
    }

    /// `true` once the quorum has been reached.
    pub fn ready(&self) -> bool {
        self.handle.ready()
    }

    /// Number of children that fired `Ok` so far.
    pub fn ok_count(&self) -> usize {
        self.state.borrow().ok
    }

    /// Number of children that fired `Err` so far.
    pub fn err_count(&self) -> usize {
        self.state.borrow().err
    }

    /// Number of children added.
    pub fn n(&self) -> usize {
        self.state.borrow().n
    }

    /// The current success threshold `k`.
    pub fn threshold(&self) -> usize {
        self.state.borrow().threshold()
    }
}

impl Watchable for QuorumEvent {
    fn handle(&self) -> &EventHandle {
        &self.handle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Notify, WaitResult};
    use simkit::{NodeId, Sim};
    use std::time::Duration;

    fn setup(n: usize) -> (Sim, Runtime, QuorumEvent, Vec<Notify>) {
        let sim = Sim::new(1);
        let rt = Runtime::new_sim(sim.clone(), NodeId(0));
        let q = QuorumEvent::majority(&rt);
        let children: Vec<Notify> = (0..n).map(|_| Notify::new(&rt)).collect();
        for c in &children {
            q.add(c);
        }
        (sim, rt, q, children)
    }

    #[test]
    fn majority_of_three_is_two() {
        let (_s, _rt, q, c) = setup(3);
        assert_eq!(q.threshold(), 2);
        c[0].set(Signal::Ok);
        assert!(!q.ready());
        c[2].set(Signal::Ok);
        assert!(q.ready());
    }

    #[test]
    fn slowest_child_never_blocks_quorum() {
        let (sim, _rt, q, c) = setup(3);
        c[0].set(Signal::Ok);
        c[1].set(Signal::Ok);
        // c[2] is fail-slow and never fires; the wait still completes now.
        let out = sim.block_on(async move { q.wait().await });
        assert_eq!(out, WaitResult::Ready);
        assert_eq!(sim.now().as_nanos(), 0);
    }

    #[test]
    fn unreachable_quorum_fails_fast() {
        let (sim, _rt, q, c) = setup(5);
        // Threshold 3; three rejections make it unreachable.
        c[0].set(Signal::Err);
        c[1].set(Signal::Err);
        assert!(q.handle().fired().is_none());
        c[2].set(Signal::Err);
        let out = sim.block_on(async move { q.wait().await });
        assert_eq!(out, WaitResult::Failed);
    }

    #[test]
    fn counts_are_exposed() {
        let (_s, _rt, q, c) = setup(5);
        c[0].set(Signal::Ok);
        c[1].set(Signal::Err);
        assert_eq!(q.ok_count(), 1);
        assert_eq!(q.err_count(), 1);
        assert_eq!(q.n(), 5);
    }

    #[test]
    fn fixed_count_mode() {
        let sim = Sim::new(1);
        let rt = Runtime::new_sim(sim.clone(), NodeId(0));
        let q = QuorumEvent::count(&rt, 1);
        let a = Notify::new(&rt);
        let b = Notify::new(&rt);
        q.add(&a);
        q.add(&b);
        a.set(Signal::Ok);
        assert!(q.ready());
    }

    #[test]
    fn all_mode_requires_every_child() {
        let sim = Sim::new(1);
        let rt = Runtime::new_sim(sim.clone(), NodeId(0));
        let q = QuorumEvent::labeled(&rt, QuorumMode::All, "all");
        let a = Notify::new(&rt);
        let b = Notify::new(&rt);
        q.add(&a);
        q.add(&b);
        a.set(Signal::Ok);
        assert!(!q.ready());
        b.set(Signal::Ok);
        assert!(q.ready());
    }

    #[test]
    fn already_fired_children_count_on_add() {
        let sim = Sim::new(1);
        let rt = Runtime::new_sim(sim.clone(), NodeId(0));
        let a = Notify::new(&rt);
        let b = Notify::new(&rt);
        a.set(Signal::Ok);
        b.set(Signal::Ok);
        let q = QuorumEvent::count(&rt, 2);
        q.add(&a);
        q.add(&b);
        assert!(q.ready());
    }

    #[test]
    fn prefired_child_under_dynamic_majority_resolves_early() {
        // The documented pitfall: a fired child added first under
        // Majority resolves the quorum at n = 1. Count is the safe mode
        // for pre-fired seeds.
        let sim = Sim::new(1);
        let rt = Runtime::new_sim(sim.clone(), NodeId(0));
        let fired = Notify::new(&rt);
        fired.set(Signal::Ok);
        let dynamic = QuorumEvent::majority(&rt);
        dynamic.add(&fired);
        assert!(dynamic.ready(), "dynamic majority resolves at n=1");
        let fixed = QuorumEvent::count(&rt, 2);
        fixed.add(&fired);
        fixed.add(&Notify::new(&rt));
        assert!(!fixed.ready(), "fixed threshold waits for the real quorum");
    }

    #[test]
    fn straggler_counters_name_the_slow_replica() {
        let sim = Sim::new(1);
        let rt = Runtime::new_sim(sim.clone(), NodeId(0));
        let q = QuorumEvent::labeled(&rt, QuorumMode::Majority, "replicate");
        let peers: Vec<EventHandle> = (1..=3)
            .map(|p| {
                EventHandle::with_sampling(
                    &rt,
                    EventKind::Rpc { target: NodeId(p) },
                    "append_entries",
                    false,
                )
            })
            .collect();
        for p in &peers {
            q.add(p);
        }
        peers[0].fire(Signal::Ok);
        peers[1].fire(Signal::Ok);
        // Node 3's reply never arrives; the quorum fires without it.
        assert!(q.ready());
        let m = rt.tracer().metrics();
        let slow = m.counter(Key::tagged("event.quorum.straggler", 3, "replicate"));
        assert_eq!(slow.get(), 1, "unfired child must be attributed");
        for fast in [1, 2] {
            let c = m.counter(Key::tagged("event.quorum.straggler", fast, "replicate"));
            assert_eq!(c.get(), 0, "node {fast} answered in time");
        }
        let wait = m.histogram(Key::tagged("event.quorum.wait", 0, "replicate"));
        assert_eq!(wait.snapshot().count, 1);
        // A late arrival must not retroactively change the attribution.
        peers[2].fire(Signal::Ok);
        assert_eq!(slow.get(), 1);
        assert_eq!(wait.snapshot().count, 1);
    }

    #[test]
    fn wait_timeout_when_quorum_never_reached() {
        let (sim, _rt, q, c) = setup(3);
        c[0].set(Signal::Ok);
        let out = sim.block_on(async move { q.wait_timeout(Duration::from_millis(50)).await });
        assert_eq!(out, WaitResult::Timeout);
    }

    #[test]
    fn nested_quorum_of_quorums() {
        // An outer majority over two inner majorities: fires only when two
        // of the inner groups reach their own quorums.
        let sim = Sim::new(1);
        let rt = Runtime::new_sim(sim.clone(), NodeId(0));
        let outer = QuorumEvent::labeled(&rt, QuorumMode::All, "outer");
        let mut groups = Vec::new();
        for _ in 0..2 {
            let inner = QuorumEvent::majority(&rt);
            let children: Vec<Notify> = (0..3).map(|_| Notify::new(&rt)).collect();
            for c in &children {
                inner.add(c);
            }
            outer.add(&inner);
            groups.push((inner, children));
        }
        groups[0].1[0].set(Signal::Ok);
        groups[0].1[1].set(Signal::Ok);
        assert!(groups[0].0.ready());
        assert!(!outer.ready());
        groups[1].1[1].set(Signal::Ok);
        groups[1].1[2].set(Signal::Ok);
        assert!(outer.ready());
    }
}
