//! `AndEvent` and `OrEvent`: the remaining compound combinators.
//!
//! §3.2: *"An AndEvent is triggered when all its subevents are triggered;
//! an OrEvent is triggered when one of its subevents is triggered. Note
//! that Events can be nested, e.g., an AndEvent can contain many
//! QuorumEvents as its subevents."*

use std::cell::RefCell;
use std::rc::Rc;

use super::core::{EventHandle, EventKind, Signal, Watchable};
use crate::runtime::Runtime;
use crate::trace::TraceRecord;

struct CState {
    n: usize,
    ok: usize,
    err: usize,
}

fn add_child(
    handle: &EventHandle,
    state: &Rc<RefCell<CState>>,
    child: &impl Watchable,
    on_child: impl Fn(Signal) + 'static,
) {
    state.borrow_mut().n += 1;
    let rt = handle.runtime();
    let t = rt.now();
    rt.tracer().record(|| TraceRecord::ChildAdded {
        t,
        parent: handle.id(),
        child: child.handle().id(),
        parent_meta: None,
    });
    child.handle().on_fire(on_child);
}

/// Fires `Ok` when **all** children have fired `Ok`; fires `Err` as soon
/// as any child fires `Err` (the conjunction can no longer hold).
///
/// The sharded-transaction layer nests one [`QuorumEvent`](super::QuorumEvent)
/// per participant shard under a single `AndEvent`: "every shard's quorum
/// prepared".
#[derive(Clone)]
pub struct AndEvent {
    handle: EventHandle,
    state: Rc<RefCell<CState>>,
}

impl AndEvent {
    /// Creates an empty conjunction.
    pub fn new(rt: &Runtime) -> Self {
        Self::labeled(rt, "and")
    }

    /// Creates an empty conjunction with a report label.
    pub fn labeled(rt: &Runtime, label: &'static str) -> Self {
        AndEvent {
            handle: EventHandle::new(rt, EventKind::And, label),
            state: Rc::new(RefCell::new(CState {
                n: 0,
                ok: 0,
                err: 0,
            })),
        }
    }

    /// Adds a child; all children must fire `Ok` for the `AndEvent` to.
    pub fn add(&self, child: &impl Watchable) {
        let me = self.clone();
        add_child(&self.handle, &self.state, child, move |s| me.on_child(s));
    }

    fn on_child(&self, signal: Signal) {
        let outcome = {
            let mut st = self.state.borrow_mut();
            match signal {
                Signal::Ok => st.ok += 1,
                Signal::Err => st.err += 1,
            }
            if st.err > 0 {
                Some(Signal::Err)
            } else if st.ok == st.n {
                Some(Signal::Ok)
            } else {
                None
            }
        };
        if let Some(s) = outcome {
            self.handle.fire(s);
        }
    }

    /// `true` once all children fired `Ok`.
    pub fn ready(&self) -> bool {
        self.handle.ready()
    }
}

impl Watchable for AndEvent {
    fn handle(&self) -> &EventHandle {
        &self.handle
    }
}

/// Fires `Ok` when **any** child fires `Ok`; fires `Err` only when every
/// child has fired `Err`.
///
/// The paper's fast-path/slow-path example waits on
/// `OrEvent(fast_ok, fast_reject)` and then inspects which branch fired.
#[derive(Clone)]
pub struct OrEvent {
    handle: EventHandle,
    state: Rc<RefCell<CState>>,
}

impl OrEvent {
    /// Creates an empty disjunction.
    pub fn new(rt: &Runtime) -> Self {
        Self::labeled(rt, "or")
    }

    /// Creates an empty disjunction with a report label.
    pub fn labeled(rt: &Runtime, label: &'static str) -> Self {
        OrEvent {
            handle: EventHandle::new(rt, EventKind::Or, label),
            state: Rc::new(RefCell::new(CState {
                n: 0,
                ok: 0,
                err: 0,
            })),
        }
    }

    /// Creates a disjunction of two events (the common binary case).
    pub fn of2(rt: &Runtime, a: &impl Watchable, b: &impl Watchable) -> Self {
        let e = Self::new(rt);
        e.add(a);
        e.add(b);
        e
    }

    /// Adds a child; any child firing `Ok` fires the `OrEvent`.
    pub fn add(&self, child: &impl Watchable) {
        let me = self.clone();
        add_child(&self.handle, &self.state, child, move |s| me.on_child(s));
    }

    fn on_child(&self, signal: Signal) {
        let outcome = {
            let mut st = self.state.borrow_mut();
            match signal {
                Signal::Ok => st.ok += 1,
                Signal::Err => st.err += 1,
            }
            if st.ok > 0 {
                Some(Signal::Ok)
            } else if st.err == st.n {
                Some(Signal::Err)
            } else {
                None
            }
        };
        if let Some(s) = outcome {
            self.handle.fire(s);
        }
    }

    /// `true` once any child fired `Ok`.
    pub fn ready(&self) -> bool {
        self.handle.ready()
    }
}

impl Watchable for OrEvent {
    fn handle(&self) -> &EventHandle {
        &self.handle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Notify, QuorumEvent, WaitResult};
    use simkit::{NodeId, Sim};
    use std::time::Duration;

    fn rt() -> (Sim, Runtime) {
        let sim = Sim::new(1);
        let rt = Runtime::new_sim(sim.clone(), NodeId(0));
        (sim, rt)
    }

    #[test]
    fn and_requires_all_children() {
        let (_s, rt) = rt();
        let and = AndEvent::new(&rt);
        let a = Notify::new(&rt);
        let b = Notify::new(&rt);
        and.add(&a);
        and.add(&b);
        a.set(Signal::Ok);
        assert!(!and.ready());
        b.set(Signal::Ok);
        assert!(and.ready());
    }

    #[test]
    fn and_fails_on_first_err() {
        let (_s, rt) = rt();
        let and = AndEvent::new(&rt);
        let a = Notify::new(&rt);
        let b = Notify::new(&rt);
        and.add(&a);
        and.add(&b);
        a.set(Signal::Err);
        assert_eq!(and.handle().fired(), Some(Signal::Err));
    }

    #[test]
    fn or_fires_on_first_ok() {
        let (_s, rt) = rt();
        let or = OrEvent::new(&rt);
        let a = Notify::new(&rt);
        let b = Notify::new(&rt);
        or.add(&a);
        or.add(&b);
        b.set(Signal::Ok);
        assert!(or.ready());
    }

    #[test]
    fn or_fails_only_when_all_fail() {
        let (_s, rt) = rt();
        let or = OrEvent::new(&rt);
        let a = Notify::new(&rt);
        let b = Notify::new(&rt);
        or.add(&a);
        or.add(&b);
        a.set(Signal::Err);
        assert!(or.handle().fired().is_none());
        b.set(Signal::Err);
        assert_eq!(or.handle().fired(), Some(Signal::Err));
    }

    #[test]
    fn fast_path_slow_path_pattern() {
        // The §3.2 example: OrEvent(fast_ok, fast_reject) with a timeout,
        // then branch on which sub-event is ready.
        let (sim, rt) = rt();
        let fast_ok = QuorumEvent::count(&rt, 3);
        let fast_reject = QuorumEvent::count(&rt, 2);
        let replies: Vec<Notify> = (0..4).map(|_| Notify::new(&rt)).collect();
        for r in &replies {
            fast_ok.add(r);
        }
        let rejects: Vec<Notify> = (0..4).map(|_| Notify::new(&rt)).collect();
        for r in &rejects {
            fast_reject.add(r);
        }
        let fastpath = OrEvent::of2(&rt, &fast_ok, &fast_reject);
        // Two rejects arrive: the fast path is rejected.
        rejects[0].set(Signal::Ok);
        rejects[1].set(Signal::Ok);
        let fp = fastpath.clone();
        let out = sim
            .block_on(async move { fp.handle().wait_timeout(Duration::from_millis(1000)).await });
        assert_eq!(out, WaitResult::Ready);
        assert!(!fast_ok.ready());
        assert!(fast_reject.ready());
    }

    #[test]
    fn and_of_quorums_nests() {
        let (_s, rt) = rt();
        let and = AndEvent::new(&rt);
        let q1 = QuorumEvent::majority(&rt);
        let q2 = QuorumEvent::majority(&rt);
        let g1: Vec<Notify> = (0..3).map(|_| Notify::new(&rt)).collect();
        let g2: Vec<Notify> = (0..3).map(|_| Notify::new(&rt)).collect();
        for c in &g1 {
            q1.add(c);
        }
        for c in &g2 {
            q2.add(c);
        }
        and.add(&q1);
        and.add(&q2);
        g1[0].set(Signal::Ok);
        g1[1].set(Signal::Ok);
        g2[0].set(Signal::Ok);
        assert!(!and.ready());
        g2[2].set(Signal::Ok);
        assert!(and.ready());
    }

    #[test]
    fn empty_and_never_fires_until_first_child() {
        let (_s, rt) = rt();
        let and = AndEvent::new(&rt);
        assert!(and.handle().fired().is_none());
        let a = Notify::new(&rt);
        and.add(&a);
        a.set(Signal::Ok);
        assert!(and.ready());
    }
}
