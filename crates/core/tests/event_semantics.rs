//! Adversarial event-semantics tests: races between firing, timeouts and
//! composition that unit tests of individual types do not cover.

use std::time::Duration;

use depfast::event::{
    AndEvent, Notify, OrEvent, QuorumEvent, QuorumMode, Signal, TimerEvent, WaitResult, Watchable,
};
use depfast::runtime::{Coroutine, Runtime};
use simkit::{NodeId, Sim};

fn rt() -> (Sim, Runtime) {
    let sim = Sim::new(5);
    let rt = Runtime::new_sim(sim.clone(), NodeId(0));
    (sim, rt)
}

/// An event firing at exactly the wait deadline: the fire wins (it is
/// processed before the timer in the same instant if it was scheduled
/// first).
#[test]
fn fire_and_deadline_same_instant_is_deterministic() {
    let run = || {
        let (sim, rt) = rt();
        let n = Notify::new(&rt);
        let n2 = n.clone();
        let rt2 = rt.clone();
        Coroutine::create(&rt, "firer", async move {
            rt2.sleep(Duration::from_millis(10)).await;
            n2.set(Signal::Ok);
        });
        let h = n.handle().clone();
        let out = sim.spawn(async move { h.wait_timeout(Duration::from_millis(10)).await });
        sim.run();
        out.try_take().unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same-instant resolution must be deterministic");
}

/// Waiting on an event after its wait timed out earlier still works.
#[test]
fn rewait_after_timeout_sees_late_fire() {
    let (sim, rt) = rt();
    let n = Notify::new(&rt);
    let h = n.handle().clone();
    let first = sim.block_on({
        let h = h.clone();
        async move { h.wait_timeout(Duration::from_millis(5)).await }
    });
    assert_eq!(first, WaitResult::Timeout);
    n.set(Signal::Ok);
    let second = sim.block_on(async move { h.wait().await });
    assert_eq!(second, WaitResult::Ready);
}

/// A quorum sealed with zero children fails immediately (0 < k).
#[test]
fn empty_sealed_quorum_fails() {
    let (sim, rt) = rt();
    let q = QuorumEvent::count(&rt, 1);
    let out = sim.block_on(async move { q.wait_timeout(Duration::from_millis(5)).await });
    assert_eq!(out, WaitResult::Failed);
}

/// Deep nesting: Or(And(Quorum, Quorum), Quorum) resolves correctly from
/// the innermost fires.
#[test]
fn three_level_nesting_resolves() {
    let (_sim, rt) = rt();
    let q1 = QuorumEvent::majority(&rt);
    let q2 = QuorumEvent::majority(&rt);
    let q3 = QuorumEvent::majority(&rt);
    let all: Vec<Vec<Notify>> = (0..3)
        .map(|_| (0..3).map(|_| Notify::new(&rt)).collect())
        .collect();
    for (q, children) in [(&q1, &all[0]), (&q2, &all[1]), (&q3, &all[2])] {
        for c in children {
            q.add(c);
        }
    }
    let and = AndEvent::new(&rt);
    and.add(&q1);
    and.add(&q2);
    let or = OrEvent::of2(&rt, &and, &q3);
    // Fire q3's majority: the Or resolves through the right branch.
    all[2][0].set(Signal::Ok);
    all[2][1].set(Signal::Ok);
    assert!(or.ready());
    assert!(!and.ready());
}

/// Signals arriving after an event resolved are ignored everywhere in a
/// compound tree (no double counting, no panic).
#[test]
fn late_signals_are_inert() {
    let (_sim, rt) = rt();
    let q = QuorumEvent::count(&rt, 1);
    let a = Notify::new(&rt);
    let b = Notify::new(&rt);
    q.add(&a);
    q.add(&b);
    a.set(Signal::Ok);
    assert!(q.ready());
    assert_eq!(q.ok_count(), 1);
    b.set(Signal::Ok);
    b.set(Signal::Err);
    assert_eq!(q.ok_count(), 2, "late ok still counted in stats");
    assert!(q.ready());
}

/// A timer used inside a quorum behaves like any other child.
#[test]
fn timer_as_quorum_child() {
    let (sim, rt) = rt();
    let q = QuorumEvent::count(&rt, 2);
    let t1 = TimerEvent::after(&rt, Duration::from_millis(5));
    let t2 = TimerEvent::after(&rt, Duration::from_millis(10));
    let never = Notify::new(&rt);
    q.add(&t1);
    q.add(&t2);
    q.add(&never);
    let out = sim.block_on(async move { q.wait_timeout(Duration::from_secs(1)).await });
    assert_eq!(out, WaitResult::Ready);
    assert_eq!(sim.now().as_nanos(), 10_000_000);
}

/// Many concurrent waiters on one quorum all resolve at the same virtual
/// instant.
#[test]
fn hundred_waiters_wake_together() {
    let (sim, rt) = rt();
    let q = QuorumEvent::count(&rt, 1);
    let n = Notify::new(&rt);
    q.add(&n);
    let handles: Vec<_> = (0..100)
        .map(|_| {
            let h = q.handle().clone();
            sim.spawn(async move { h.wait().await })
        })
        .collect();
    let rt2 = rt.clone();
    Coroutine::create(&rt, "firer", async move {
        rt2.sleep(Duration::from_millis(3)).await;
        n.set(Signal::Ok);
    });
    sim.run();
    for h in handles {
        assert_eq!(h.try_take(), Some(WaitResult::Ready));
    }
}

/// The §3.2 nested pattern under its timeout: neither quorum resolves, the
/// Or wait times out, and both branches remain individually inspectable.
#[test]
fn fastpath_timeout_leaves_branches_inspectable() {
    let (sim, rt) = rt();
    let fast_ok = QuorumEvent::labeled(&rt, QuorumMode::Count(3), "fast_ok");
    let fast_reject = QuorumEvent::labeled(&rt, QuorumMode::Count(2), "fast_reject");
    for _ in 0..3 {
        fast_ok.add(&Notify::new(&rt));
    }
    for _ in 0..3 {
        fast_reject.add(&Notify::new(&rt));
    }
    let fastpath = OrEvent::of2(&rt, &fast_ok, &fast_reject);
    let fp = fastpath.clone();
    let out =
        sim.block_on(async move { fp.handle().wait_timeout(Duration::from_millis(100)).await });
    assert_eq!(out, WaitResult::Timeout);
    assert!(!fast_ok.ready());
    assert!(!fast_reject.ready());
    assert!(fastpath.handle().fired().is_none());
}
