//! Workspace umbrella crate: re-exports the DepFast reproduction stack so
//! examples and integration tests can use one import root.

pub use depfast;
pub use depfast_detect;
pub use depfast_fault;
pub use depfast_kv;
pub use depfast_metrics;
pub use depfast_raft;
pub use depfast_rpc;
pub use depfast_storage;
pub use depfast_txn;
pub use depfast_ycsb;
pub use simkit;
