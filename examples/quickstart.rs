//! Quickstart: a 3-node DepFastRaft replicated KV store in ~40 lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use bytes::Bytes;
use depfast_kv::KvCluster;
use depfast_raft::cluster::RaftKind;
use depfast_raft::core::RaftCfg;
use simkit::{Sim, World, WorldCfg};
use std::rc::Rc;

fn main() {
    // A deterministic simulated cluster: 3 server nodes + 1 client host.
    let sim = Sim::new(42);
    let world = World::new(
        sim.clone(),
        WorldCfg {
            nodes: 4,
            ..WorldCfg::default()
        },
    );

    // Build DepFastRaft + the KV layer on nodes 0..3, a client on node 3.
    let cluster = Rc::new(KvCluster::build(
        &sim,
        &world,
        RaftKind::DepFast,
        3,
        1,
        RaftCfg {
            bootstrap_leader: Some(0),
            ..RaftCfg::default()
        },
    ));

    let cl = cluster.clone();
    let s = sim.clone();
    sim.block_on(async move {
        let client = &cl.clients[0];
        client
            .put(
                Bytes::from_static(b"greeting"),
                Bytes::from_static(b"hello, depfast"),
            )
            .await
            .expect("replicated put");
        let value = client
            .get(Bytes::from_static(b"greeting"))
            .await
            .expect("linearizable get");
        println!(
            "[{}] get(greeting) = {:?}",
            s.now(),
            value.map(|v| String::from_utf8_lossy(&v).into_owned())
        );
    });

    // Let the followers' apply loops drain, then show replica convergence.
    sim.run_until_time(sim.now() + std::time::Duration::from_secs(1));
    for (i, server) in cluster.servers.iter().enumerate() {
        println!(
            "server {}: {} key(s), leader = {}",
            i,
            server.keys(),
            server.raft().is_leader()
        );
    }
    println!("total virtual time: {}", sim.now());
}
