//! Scale-out: shard one keyspace across many co-located Raft groups.
//!
//! ```sh
//! cargo run --release --example scale_out
//! ```
//!
//! Two demos in one file:
//!
//! 1. **Routing** — a 4-group cluster striped over 5 nodes; a handful of
//!    puts show each key hashing to its owning group and landing on that
//!    group's leader, with reads routed the same way.
//! 2. **Sweep** — the same YCSB-B workload against 1, 2, 4, and 8 groups
//!    on a fixed 9-node fleet. One group is leader-CPU-bound; more groups
//!    mean more leaders, so aggregate throughput climbs until the shared
//!    fleet saturates. (The committed `BENCH_fig1.json` runs the full
//!    sweep out to 64 groups.)

use std::rc::Rc;
use std::time::Duration;

use bytes::Bytes;
use depfast_bench::{run_scale_experiment, ScaleCfg};
use depfast_kv::ShardedKvCluster;
use depfast_raft::cluster::RaftKind;
use depfast_raft::core::RaftCfg;
use simkit::{Sim, World, WorldCfg};

fn routing_demo() {
    let sim = Sim::new(7);
    let world = World::new(
        sim.clone(),
        WorldCfg {
            nodes: 6, // 5 server nodes + 1 client host
            ..WorldCfg::default()
        },
    );
    let cluster = Rc::new(ShardedKvCluster::build_tuned(
        &sim,
        &world,
        RaftKind::DepFast,
        4, // groups
        5, // server nodes
        3, // replicas per group
        1, // clients
        RaftCfg {
            bootstrap_leader: Some(0),
            ..RaftCfg::default()
        },
        Duration::from_micros(50),
    ));

    println!("4 Raft groups striped over 5 nodes:");
    for g in &cluster.raft.groups {
        println!("  g{} on nodes {:?}", g.gid, g.members);
    }

    let cl = cluster.clone();
    sim.block_on(async move {
        let client = &cl.clients[0];
        for key in ["user:alice", "user:bob", "cart:9931", "order:77"] {
            let gid = client.shard_map().group_of(key.as_bytes());
            client
                .put(Bytes::from(key), Bytes::from_static(b"v1"))
                .await
                .expect("sharded put");
            let back = client.get(Bytes::from(key)).await.expect("sharded get");
            println!(
                "  put+get {key:<10} -> g{gid} (leader {:?}), read back {:?}",
                cl.raft.groups[(gid - 1) as usize].members[0],
                back.map(|v| String::from_utf8_lossy(&v).into_owned()),
            );
        }
    });
}

fn sweep_demo() {
    println!("\nscale-out sweep (9 nodes, 128 closed-loop clients, YCSB-B):");
    println!(
        "  {:>6}  {:>10}  {:>8}  {:>8}",
        "groups", "req/s", "p99 ms", "speedup"
    );
    let mut one_group = None;
    for n_groups in [1usize, 2, 4, 8] {
        let stats = run_scale_experiment(&ScaleCfg {
            kind: RaftKind::DepFast,
            n_groups,
            n_nodes: 9,
            group_size: 3,
            n_clients: 128,
            warmup: Duration::from_secs(1),
            measure: Duration::from_millis(1500),
            records: 10_000,
            ..ScaleCfg::default()
        });
        let base = *one_group.get_or_insert(stats.total.throughput);
        println!(
            "  {:>6}  {:>10.0}  {:>8.2}  {:>7.2}x",
            n_groups,
            stats.total.throughput,
            stats.total.latency.p99.as_secs_f64() * 1e3,
            stats.total.throughput / base,
        );
    }
}

fn main() {
    routing_demo();
    sweep_demo();
}
