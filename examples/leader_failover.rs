//! The §5 mitigation loop, end to end: a leader fails slow, the
//! trace-point detector flags it, and the mitigation demotes it into a
//! (well-tolerated) fail-slow follower.
//!
//! ```sh
//! cargo run --release --example leader_failover
//! ```

use std::rc::Rc;
use std::time::Duration;

use bytes::Bytes;
use depfast_detect::{spawn_leader_mitigation, DetectorCfg, FailSlowDetector};
use depfast_kv::KvCluster;
use depfast_raft::cluster::RaftKind;
use depfast_raft::core::{RaftCfg, RaftCore};
use simkit::{NodeId, Sim, World, WorldCfg};

fn main() {
    let sim = Sim::new(3);
    let world = World::new(
        sim.clone(),
        WorldCfg {
            nodes: 19, // 3 servers + 16 client hosts
            ..WorldCfg::default()
        },
    );
    let cluster = Rc::new(KvCluster::build(
        &sim,
        &world,
        RaftKind::DepFast,
        3,
        16,
        RaftCfg {
            bootstrap_leader: Some(0),
            ..RaftCfg::default()
        },
    ));
    let cores: Vec<Rc<RaftCore>> = cluster
        .raft
        .servers
        .iter()
        .map(|s| s.core().clone())
        .collect();
    let detector = FailSlowDetector::spawn(&sim, &cluster.raft.tracer, DetectorCfg::default());
    detector.on_suspect(|s| {
        println!(
            "[detector] {} suspected fail-slow via `{}`: {:?} vs baseline {:?} (at {})",
            s.node, s.label, s.observed, s.baseline, s.at
        );
    });
    spawn_leader_mitigation(&sim, &detector, cores.clone(), Duration::from_secs(2));

    let drive = |label: &str, ops_per_client: u32| {
        let t0 = sim.now();
        let handles: Vec<_> = (0..cluster.clients.len())
            .map(|c| {
                let cl = cluster.clone();
                sim.spawn(async move {
                    let mut ok = 0u32;
                    for i in 0..ops_per_client {
                        let key = Bytes::from(format!("{c}:{i}"));
                        if cl.clients[c]
                            .put(key, Bytes::from(vec![0u8; 64]))
                            .await
                            .is_ok()
                        {
                            ok += 1;
                        }
                    }
                    ok
                })
            })
            .collect();
        let ok: u32 = handles.into_iter().map(|h| sim.run_until(h)).sum();
        let dt = (sim.now() - t0).as_secs_f64();
        println!(
            "[{label}] {ok} commits in {dt:.2}s virtual = {:.0} req/s (leader = {:?})",
            ok as f64 / dt,
            cores.iter().find(|c| c.is_leader()).map(|c| c.id)
        );
    };

    drive("healthy baseline", 700);

    println!("\n>>> injecting CPU slowness (5% quota) into the LEADER, node n0\n");
    world.set_cpu_quota(NodeId(0), 0.05);

    drive("leader fail-slow", 150);
    sim.run_until_time(sim.now() + Duration::from_secs(2));

    drive("after mitigation", 300);
    println!(
        "\nn0 is now a fail-slow follower — exactly the failure mode DepFastRaft \
         tolerates by construction (paper §5)."
    );
}
