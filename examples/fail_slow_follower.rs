//! The paper's headline experiment, miniaturized: inject a fail-slow
//! follower and compare DepFastRaft against the three legacy-style
//! implementations.
//!
//! ```sh
//! cargo run --release --example fail_slow_follower
//! ```

use std::time::Duration;

use depfast_bench::{run_experiment, ExperimentCfg};
use depfast_fault::FaultKind;
use depfast_raft::cluster::RaftKind;

fn main() {
    let fault = FaultKind::CpuSlow { quota: 0.05 };
    println!(
        "Injecting {:?} into one follower of each 3-node cluster...\n",
        fault.name()
    );
    println!(
        "{:<32} {:>14} {:>14} {:>9} {:>10} {:>10}",
        "System", "healthy req/s", "faulty req/s", "tput", "avg lat", "p99 lat"
    );
    for kind in [
        RaftKind::DepFast,
        RaftKind::Sync,
        RaftKind::Backlog,
        RaftKind::Callback,
    ] {
        let cfg = ExperimentCfg {
            kind,
            n_clients: 128,
            warmup: Duration::from_secs(1),
            measure: Duration::from_secs(4),
            records: 100_000,
            ..ExperimentCfg::default()
        };
        let healthy = run_experiment(&cfg);
        let faulty = run_experiment(&ExperimentCfg {
            fault: Some((ExperimentCfg::followers(1), fault)),
            ..cfg
        });
        if faulty.server_crashed {
            println!(
                "{:<32} {:>14.0} {:>14} {:>9} {:>10} {:>10}",
                kind.name(),
                healthy.throughput,
                "CRASH",
                "-",
                "-",
                "-"
            );
            continue;
        }
        println!(
            "{:<32} {:>14.0} {:>14.0} {:>8.0}% {:>9.0}% {:>9.0}%",
            kind.name(),
            healthy.throughput,
            faulty.throughput,
            faulty.throughput / healthy.throughput * 100.0,
            faulty.latency.mean.as_secs_f64() / healthy.latency.mean.as_secs_f64() * 100.0,
            faulty.latency.p99.as_secs_f64() / healthy.latency.p99.as_secs_f64() * 100.0,
        );
    }
    println!(
        "\n(percentages are faulty/healthy; DepFastRaft should sit near 100% on all three \
         while the legacy styles degrade — the paper's Figure 1 vs Figure 3 contrast)"
    );
}
