//! Runtime verification in action: build slowness propagation graphs from
//! live traces and let the checker find the fail-slow bug.
//!
//! Runs the same traced workload on DepFastRaft (expected: all-green SPG,
//! zero violations) and on CallbackRaft with a lagging follower (expected:
//! the synchronous flow-control probe shows up as a red edge and a
//! verifier violation).
//!
//! ```sh
//! cargo run --release --example slowness_graph
//! ```

use std::collections::BTreeSet;
use std::rc::Rc;
use std::time::Duration;

use bytes::Bytes;
use depfast::spg;
use depfast::verify;
use depfast_kv::KvCluster;
use depfast_raft::cluster::RaftKind;
use depfast_raft::core::RaftCfg;
use simkit::{NodeId, Sim, World, WorldCfg};

fn run_traced(kind: RaftKind, slow_follower: bool) -> (spg::Spg, Vec<verify::Violation>) {
    let sim = Sim::new(7);
    let world = World::new(
        sim.clone(),
        WorldCfg {
            nodes: 5, // 3 servers + 2 clients
            ..WorldCfg::default()
        },
    );
    let cluster = Rc::new(KvCluster::build(
        &sim,
        &world,
        kind,
        3,
        2,
        RaftCfg {
            bootstrap_leader: Some(0),
            ..RaftCfg::default()
        },
    ));
    if slow_follower {
        world.set_cpu_quota(NodeId(2), 0.02);
    }
    // Build up lag untraced, then record a window.
    let drive = |n: u32| {
        let handles: Vec<_> = (0..2)
            .map(|c| {
                let cl = cluster.clone();
                sim.spawn(async move {
                    for i in 0..n {
                        let key = Bytes::from(format!("k{c}-{i}"));
                        let _ = cl.clients[c].put(key, Bytes::from(vec![0u8; 256])).await;
                    }
                })
            })
            .collect();
        for h in handles {
            sim.run_until(h);
        }
    };
    drive(400);
    cluster.raft.tracer.set_record_full(true);
    drive(150);
    cluster.raft.tracer.set_record_full(false);
    let graph = spg::build(&cluster.raft.tracer.records());
    let violations = verify::check_fail_slow_tolerance(&graph, |l| l.starts_with("raft:"));
    (graph, violations)
}

fn name(n: NodeId) -> String {
    if n.0 < 3 {
        format!("s{}", n.0 + 1)
    } else {
        format!("c{}", n.0 - 2)
    }
}

fn main() {
    println!("=== DepFastRaft (healthy): the all-green SPG ===");
    let (graph, violations) = run_traced(RaftKind::DepFast, false);
    println!("{}", graph.to_dot(name));
    println!("verifier violations: {}", violations.len());
    let slow: BTreeSet<NodeId> = [NodeId(1)].into();
    let impacted = verify::propagation_impact(&graph, &slow);
    println!(
        "predicted impact of a slow follower s2: {:?} (itself only)\n",
        impacted.iter().map(|n| name(*n)).collect::<Vec<_>>()
    );

    println!("=== CallbackRaft with a CPU-starved follower: the red edge ===");
    let (graph, violations) = run_traced(RaftKind::Callback, true);
    println!("{}", graph.to_dot(name));
    println!("verifier violations: {}", violations.len());
    for v in &violations {
        println!("  {v}");
    }
    let impacted = verify::propagation_impact(&graph, &[NodeId(2)].into());
    println!(
        "predicted impact of slow follower s3: {:?}",
        impacted.iter().map(|n| name(*n)).collect::<Vec<_>>()
    );
    println!(
        "\nThe checker found the slowness-propagation bug without reading a line of driver \
         code — the debugging §2.3 says took two person-years by hand."
    );
    let _ = Duration::ZERO;
}
