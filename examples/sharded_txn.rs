//! Distributed transactions over a sharded store (the paper's §5 future
//! work): 2PC across three DepFastRaft groups, expressed with nested
//! compound events — and still fail-slow tolerant when every shard has a
//! slow replica.
//!
//! ```sh
//! cargo run --release --example sharded_txn
//! ```

use std::rc::Rc;
use std::time::Duration;

use bytes::Bytes;
use depfast_raft::core::RaftCfg;
use depfast_txn::ShardedCluster;
use simkit::{NodeId, Sim, World, WorldCfg};

fn main() {
    let sim = Sim::new(9);
    let world = World::new(
        sim.clone(),
        WorldCfg {
            nodes: 11, // 3 shards x 3 servers + 2 coordinators
            ..WorldCfg::default()
        },
    );
    let cluster = Rc::new(ShardedCluster::build(
        &sim,
        &world,
        3,
        3,
        2,
        RaftCfg {
            bootstrap_leader: Some(0),
            ..RaftCfg::default()
        },
    ));

    // One fail-slow follower per shard — a minority everywhere.
    for shard in 0..3u32 {
        world.set_cpu_quota(NodeId(shard * 3 + 2), 0.02);
    }
    println!("one CPU-starved (2%) follower injected into each of the 3 shards\n");

    let cl = cluster.clone();
    let s = sim.clone();
    sim.block_on(async move {
        // A cross-shard transfer: debit on one shard, credit on another,
        // atomically.
        let t0 = s.now();
        let committed = cl.clients[0]
            .transact(vec![
                (
                    Bytes::from_static(b"account:alice"),
                    Bytes::from_static(b"900"),
                ),
                (
                    Bytes::from_static(b"account:bob"),
                    Bytes::from_static(b"1100"),
                ),
                (
                    Bytes::from_static(b"audit:log:1"),
                    Bytes::from_static(b"alice->bob:100"),
                ),
            ])
            .await;
        println!(
            "cross-shard transfer committed = {committed:?} in {:?} (virtual)",
            s.now() - t0
        );

        // Two coordinators race on the same key: exactly one serializes
        // first, the other either aborts or retries after it.
        let conflict_key = Bytes::from_static(b"hot:item");
        let r1 = cl.clients[0]
            .transact(vec![(conflict_key.clone(), Bytes::from_static(b"c0"))])
            .await;
        let r2 = cl.clients[1]
            .transact(vec![(conflict_key.clone(), Bytes::from_static(b"c1"))])
            .await;
        println!("racing writers: coordinator0 -> {r1:?}, coordinator1 -> {r2:?}");
    });

    sim.run_until_time(sim.now() + Duration::from_secs(1));
    let key = Bytes::from_static(b"account:alice");
    let shard = cluster.shard_of(&key);
    println!(
        "\nshard {} replicas agree on account:alice = {:?}",
        shard,
        cluster.servers[shard]
            .iter()
            .map(|r| r
                .local_get(&key)
                .map(|v| String::from_utf8_lossy(&v).into_owned()))
            .collect::<Vec<_>>()
    );
    let commits: u64 = cluster.servers.iter().flatten().map(|s| s.commits()).sum();
    let aborts: u64 = cluster.servers.iter().flatten().map(|s| s.aborts()).sum();
    println!(
        "cluster-wide: {commits} shard-commits, {aborts} shard-aborts, virtual time {}",
        sim.now()
    );
}
